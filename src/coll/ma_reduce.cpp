// Flat movement-avoiding (MA) sliced reduction (paper §3.2-§3.5, Fig. 5/6).
//
// The message is split into p ownership blocks; each round processes one
// I-sized sub-slice of every block through the optimal reduction schedule:
//
//   step j of rank r works on slice l = (r+1+j) mod p
//     j = 0      copy my sendbuf slice l into shm slot l        (V = 2I)
//     0 < j      reduce my sendbuf slice l into shm slot l      (no copy)
//     j = p-1    l == r: fused final reduce, streamed to the destination
//
// Slot l is touched in rank order l-1, l-2, ..., l+1, l (mod p), so the
// only dependency is on the next-higher rank having finished the previous
// step — enforced with per-rank monotone progress flags (no barriers inside
// the reduce-scatter pipeline, including across rounds).
//
// Per tree this copies exactly one slice: the provably minimal copy volume
// (Theorem 3.1), giving the Table 1 DAV of s*(3p-1) for reduce-scatter.
#include <cstdint>

#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/copy/policy.hpp"
#include "yhccl/copy/reduce_kernels.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::coll {

namespace {

using detail::BlockSlicing;

enum class FinalDest : int {
  recv_block,  ///< stream the last reduce into my receive block (scatter)
  shm,         ///< keep the result in shared memory (allreduce/reduce)
};

/// One MA round (steps j = 0..p-1 of round t for this rank).
void ma_round(RankCtx& ctx, const std::byte* send, std::byte* recv_block,
              std::byte* shm, const BlockSlicing& S, std::size_t t,
              Datatype d, ReduceOp op, const CollOpts& opts, std::size_t C,
              std::size_t W, std::uint64_t seq, FinalDest fd) {
  const int p = ctx.nranks();
  const int r = ctx.rank();
  const int right = (r + 1) % p;
  for (int j = 0; j < p; ++j) {
    // Abort/injection check once per slice step: compute-heavy reduce
    // phases leave the team promptly instead of at the next sync point.
    rt::fault_point("slice");
    const auto l = static_cast<std::size_t>((r + 1 + j) % p);
    const std::uint64_t k = t * static_cast<std::size_t>(p) +
                            static_cast<std::size_t>(j);
    if (k > 0) ctx.step_wait(right, rt::RankCtx::step_value(seq, k));
    const std::size_t len = S.len(l, t);
    if (len > 0) {
      std::byte* slot = shm + l * S.slice;
      const std::byte* src = send + S.off(l, t);
      if (j == 0) {
        // The shared slot is re-read by every later step: temporal hint.
        trace::Span sp(trace::Phase::copy_in, len);
        if (sp.active())
          sp.set_variant(trace::copy_variant(
              copy::use_nt_store(opts.policy, true, C, W, len),
              static_cast<int>(copy::active_isa())));
        copy::dispatch_copy(opts.policy, slot, src, len,
                            /*temporal_hint=*/true, C, W);
      } else if (j < p - 1 || fd == FinalDest::shm) {
        trace::Span sp(trace::Phase::reduce, len);
        if (sp.active())
          sp.set_variant(trace::copy_variant(
              false, static_cast<int>(copy::active_isa())));
        copy::reduce_inplace(slot, src, len, d, op);
      } else {
        // j == p-1 implies l == r: fuse the last reduction with the
        // delivery into my receive block; the result is never re-read by
        // this collective, so the store may stream.
        const bool nt = copy::use_nt_store(opts.policy,
                                           /*temporal_hint=*/false, C, W, len);
        trace::Span sp(trace::Phase::reduce, len);
        if (sp.active())
          sp.set_variant(trace::copy_variant(
              nt, static_cast<int>(copy::active_isa())));
        copy::reduce_out(recv_block + S.off_in_block(t), slot, src, len, d,
                         op, nt);
      }
    }
    ctx.step_publish(rt::RankCtx::step_value(seq, k + 1));
  }
}

}  // namespace

void ma_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                       std::size_t count, Datatype d, ReduceOp op,
                       const CollOpts& opts) {
  detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t B = count * dtype_size(d);
  trace::CollScope coll_scope(detail::trace_coll_id(CollKind::reduce_scatter),
                              B * static_cast<std::size_t>(p),
                              detail::trace_alg_id(Algorithm::ma_flat));
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, B);
    return;
  }
  const std::size_t total = B * static_cast<std::size_t>(p);
  const auto S = BlockSlicing::with_block(total, B, opts);
  detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(static_cast<std::size_t>(p) * S.slice);
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = detail::WorkSet::reduce_scatter(total, p, S.slice);
  const std::uint64_t seq = ctx.next_seq();

  for (std::size_t t = 0; t < S.nrounds; ++t)
    ma_round(ctx, sb, rb, shm, S, t, d, op, opts, C, W, seq,
             FinalDest::recv_block);
  // Protect shm reuse by the next collective (a laggard's final reduce may
  // still be reading its slot).
  ctx.barrier();
}

void ma_allreduce(RankCtx& ctx, const void* send, void* recv,
                  std::size_t count, Datatype d, ReduceOp op,
                  const CollOpts& opts) {
  detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t total = count * dtype_size(d);
  trace::CollScope coll_scope(detail::trace_coll_id(CollKind::allreduce),
                              total,
                              detail::trace_alg_id(Algorithm::ma_flat));
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, total);
    return;
  }
  const auto S = BlockSlicing::partitioned(total, p, opts);
  detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(static_cast<std::size_t>(p) * S.slice);
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = detail::WorkSet::allreduce(total, p, 1, S.slice);
  const std::uint64_t seq = ctx.next_seq();

  for (std::size_t t = 0; t < S.nrounds; ++t) {
    ma_round(ctx, sb, nullptr, shm, S, t, d, op, opts, C, W, seq,
             FinalDest::shm);
    ctx.barrier();  // all final reduces of this round done
    // Copy-out (Algorithm 2 lines 14-16): the receive buffer is only read
    // after the collective, so these stores may stream.
    rt::fault_point("slice");
    {
      trace::Span sp(trace::Phase::copy_out);
      if (sp.active())
        sp.set_variant(trace::copy_variant(
            copy::use_nt_store(opts.policy, false, C, W, S.slice),
            static_cast<int>(copy::active_isa())));
      for (int b = 0; b < p; ++b) {
        const auto lb = static_cast<std::size_t>(b);
        const std::size_t len = S.len(lb, t);
        if (len > 0) {
          sp.add_bytes(len);
          copy::dispatch_copy(opts.policy, rb + S.off(lb, t),
                              shm + lb * S.slice, len,
                              /*temporal_hint=*/false, C, W);
        }
      }
    }
    ctx.barrier();  // shm slots may be overwritten by the next round
  }
}

void ma_reduce(RankCtx& ctx, const void* send, void* recv, std::size_t count,
               Datatype d, ReduceOp op, int root, const CollOpts& opts) {
  detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t total = count * dtype_size(d);
  trace::CollScope coll_scope(detail::trace_coll_id(CollKind::reduce), total,
                              detail::trace_alg_id(Algorithm::ma_flat));
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, total);
    return;
  }
  const auto S = BlockSlicing::partitioned(total, p, opts);
  detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(static_cast<std::size_t>(p) * S.slice);
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = detail::WorkSet::reduce(total, p, 1, S.slice);
  const std::uint64_t seq = ctx.next_seq();

  for (std::size_t t = 0; t < S.nrounds; ++t) {
    ma_round(ctx, sb, nullptr, shm, S, t, d, op, opts, C, W, seq,
             FinalDest::shm);
    ctx.barrier();
    rt::fault_point("slice");
    if (ctx.rank() == root) {
      trace::Span sp(trace::Phase::copy_out);
      if (sp.active())
        sp.set_variant(trace::copy_variant(
            copy::use_nt_store(opts.policy, false, C, W, S.slice),
            static_cast<int>(copy::active_isa())));
      for (int b = 0; b < p; ++b) {
        const auto lb = static_cast<std::size_t>(b);
        const std::size_t len = S.len(lb, t);
        if (len > 0) {
          sp.add_bytes(len);
          copy::dispatch_copy(opts.policy, rb + S.off(lb, t),
                              shm + lb * S.slice, len,
                              /*temporal_hint=*/false, C, W);
        }
      }
    }
    ctx.barrier();
  }
}

}  // namespace yhccl::coll
