#include "yhccl/metrics/metrics.hpp"

#include <time.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "yhccl/common/time.hpp"

namespace yhccl::metrics {

// ---------------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------------

Mode mode_from_env() {
  const char* e = std::getenv("YHCCL_METRICS");
  if (e == nullptr || *e == '\0' || std::strcmp(e, "off") == 0)
    return Mode::off;
  if (std::strcmp(e, "on") == 0) return Mode::on;
  if (std::strcmp(e, "serve") == 0) return Mode::serve;
  raise(std::string("YHCCL_METRICS='") + e + "' is not one of off|on|serve");
}

Mode resolve_mode(Mode cfg) {
  return cfg == Mode::env ? mode_from_env() : cfg;
}

const char* mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::env: return "env";
    case Mode::off: return "off";
    case Mode::on: return "on";
    case Mode::serve: return "serve";
  }
  return "?";
}

const char* metrics_dir() noexcept {
  const char* e = std::getenv("YHCCL_METRICS_DIR");
  return (e != nullptr && *e != '\0') ? e : nullptr;
}

int interval_ms_from_env() {
  constexpr int kDefault = 1000;
  constexpr int kMin = 10;
  constexpr int kMax = 600000;
  const char* e = std::getenv("YHCCL_METRICS_INTERVAL_MS");
  if (e == nullptr || *e == '\0') return kDefault;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(e, &end, 10);
  YHCCL_REQUIRE(end != nullptr && end != e && *end == '\0' && errno == 0 &&
                    v > 0,
                "YHCCL_METRICS_INTERVAL_MS is not a positive integer");
  return static_cast<int>(v < kMin ? kMin : (v > kMax ? kMax : v));
}

// ---------------------------------------------------------------------------
// Name tables
// ---------------------------------------------------------------------------

const char* coll_slot_name(int id) noexcept {
  // 1 + coll::CollKind, the trace::coll_id_name convention (test_metrics
  // pins this to coll_kind_name).
  switch (id) {
    case 0: return "";
    case 1: return "allreduce";
    case 2: return "reduce";
    case 3: return "reduce_scatter";
    case 4: return "broadcast";
    case 5: return "allgather";
    default: return "?";
  }
}

const char* alg_slot_name(int id) noexcept {
  // 1 + coll::Algorithm; test_metrics pins this to algorithm_name.
  switch (id) {
    case 0: return "?";
    case 1: return "automatic";
    case 2: return "ma_flat";
    case 3: return "ma_socket_aware";
    case 4: return "dpml_two_level";
    case 5: return "pipelined";
    default: return "?";
  }
}

// ---------------------------------------------------------------------------
// MetricsBuffer
// ---------------------------------------------------------------------------

std::size_t MetricsBuffer::required_bytes(int nranks) {
  return checked_add(
      checked_add(round_up(sizeof(MetricsBuffer), kCacheline),
                  round_up(sizeof(TeamGauges), alignof(RankSlot)),
                  "metrics header"),
      checked_mul(static_cast<std::size_t>(nranks), sizeof(RankSlot),
                  "metrics slot count"),
      "metrics arena");
}

MetricsBuffer* MetricsBuffer::create(void* mem, std::size_t bytes, int nranks,
                                     Mode mode) {
  YHCCL_REQUIRE(nranks >= 1, "metrics: nranks out of range");
  YHCCL_REQUIRE(mode == Mode::on || mode == Mode::serve,
                "metrics: create requires a resolved active mode");
  YHCCL_REQUIRE(bytes >= required_bytes(nranks),
                "metrics: region too small for the registry");
  auto* buf = new (mem) MetricsBuffer();
  buf->nranks_ = nranks;
  buf->mode_ = mode;
  new (&buf->team()) TeamGauges();
  for (int r = 0; r < nranks; ++r) new (&buf->rank(r)) RankSlot();
  buf->wall0_ = wall_seconds();
  buf->tsc0_ = trace::trace_now();
  return buf;
}

double MetricsBuffer::ticks_per_second() const noexcept {
  std::uint64_t bits = hz_bits_.load(std::memory_order_acquire);
  if (bits != 0) {
    double hz;
    std::memcpy(&hz, &bits, sizeof hz);
    return hz;
  }
  // The TraceBuffer calibration scheme: ratio over the interval since
  // create, padded with a short busy sample so an immediate export (unit
  // tests) is not noise; the first calibrator's value is CAS-published in
  // the shared header so all readers — either side of a fork() — convert
  // ticks identically.
  double wall1 = wall_seconds();
  std::uint64_t tsc1 = trace::trace_now();
  while (wall1 - wall0_ < 2e-3) {
    timespec ts{0, 200'000};
    nanosleep(&ts, nullptr);
    wall1 = wall_seconds();
    tsc1 = trace::trace_now();
  }
  double hz = static_cast<double>(tsc1 - tsc0_) / (wall1 - wall0_);
  if (!(hz > 0)) hz = 1e9;  // defensive: never divide by zero downstream
  std::memcpy(&bits, &hz, sizeof bits);
  std::uint64_t expect = 0;
  if (!hz_bits_.compare_exchange_strong(expect, bits,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    std::memcpy(&hz, &expect, sizeof hz);
  }
  return hz;
}

}  // namespace yhccl::metrics
