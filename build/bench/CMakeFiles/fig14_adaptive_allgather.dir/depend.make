# Empty dependencies file for fig14_adaptive_allgather.
# This may be replaced when dependencies are built.
