#include "yhccl/coll/vcoll.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/policy.hpp"
#include "yhccl/copy/reduce_kernels.hpp"

namespace yhccl::coll {

namespace {

/// Ragged ownership blocks: byte offsets/lengths per rank plus the shared
/// slice geometry (rounds cover [t*I, (t+1)*I) of every block; blocks
/// shorter than t*I simply contribute nothing in round t).
struct VarBlocks {
  std::vector<std::size_t> off;  // byte offset of block r (packed order)
  std::vector<std::size_t> len;  // byte length of block r
  std::size_t total = 0;
  std::size_t slice = 0;  // I
  std::size_t nrounds = 0;

  static VarBlocks make(int p, const std::size_t* counts, std::size_t esize,
                        const CollOpts& opts) {
    VarBlocks v;
    v.off.resize(p);
    v.len.resize(p);
    std::size_t maxlen = 0;
    for (int r = 0; r < p; ++r) {
      v.off[r] = v.total;
      v.len[r] = counts[r] * esize;
      v.total += v.len[r];
      maxlen = std::max(maxlen, v.len[r]);
    }
    const std::size_t imax =
        std::max(round_up(opts.slice_max, kCacheline), kCacheline);
    const std::size_t imin = std::max(opts.slice_min, kCacheline);
    v.slice = std::clamp(
        round_up(std::max<std::size_t>(maxlen, 1), kCacheline), imin, imax);
    v.nrounds = std::max<std::size_t>(ceil_div(maxlen, v.slice), 1);
    return v;
  }

  std::size_t sub_len(int r, std::size_t t) const noexcept {
    const std::size_t start = t * slice;
    return start >= len[r] ? 0 : std::min(slice, len[r] - start);
  }
};

}  // namespace

void allgatherv(RankCtx& ctx, const void* send, void* recv,
                const std::size_t* counts, Datatype d,
                const CollOpts& opts) {
  const int p = ctx.nranks();
  const auto v = VarBlocks::make(p, counts, dtype_size(d), opts);
  if (v.total == 0) return;
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, v.total);
    return;
  }
  detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(static_cast<std::size_t>(p) * v.slice);
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = detail::WorkSet::allgather(v.total, p, v.slice);
  const auto r = ctx.rank();

  for (std::size_t t = 0; t < v.nrounds; ++t) {
    const std::size_t mine = v.sub_len(r, t);
    if (mine > 0)
      copy::dispatch_copy(opts.policy, shm + static_cast<std::size_t>(r) * v.slice,
                          sb + t * v.slice, mine, /*temporal_hint=*/true, C,
                          W);
    ctx.barrier();
    for (int k = 0; k < p; ++k) {
      const int a = (r + k) % p;  // stagger readers across source slots
      const std::size_t la = v.sub_len(a, t);
      if (la > 0)
        copy::dispatch_copy(opts.policy, rb + v.off[a] + t * v.slice,
                            shm + static_cast<std::size_t>(a) * v.slice, la,
                            /*temporal_hint=*/false, C, W);
    }
    ctx.barrier();
  }
}

void reduce_scatterv(RankCtx& ctx, const void* send, void* recv,
                     const std::size_t* counts, Datatype d, ReduceOp op,
                     const CollOpts& opts) {
  YHCCL_REQUIRE(op_valid_for(op, d), "reduce op invalid for datatype");
  const int p = ctx.nranks();
  const auto v = VarBlocks::make(p, counts, dtype_size(d), opts);
  if (v.total == 0) return;
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, v.total);
    return;
  }
  detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(static_cast<std::size_t>(p) * v.slice);
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W =
      detail::WorkSet::reduce_scatter(v.total, p, v.slice);
  const std::uint64_t seq = ctx.next_seq();
  const int r = ctx.rank();
  const int right = (r + 1) % p;

  // The §3.2 movement-avoiding rotation, unchanged except that block
  // lengths vary: slot l is still touched in rank order l-1, ..., l, so
  // the neighbour-only dependency holds for any block sizes.
  for (std::size_t t = 0; t < v.nrounds; ++t) {
    for (int j = 0; j < p; ++j) {
      const int l = (r + 1 + j) % p;
      const std::uint64_t k =
          t * static_cast<std::size_t>(p) + static_cast<std::size_t>(j);
      if (k > 0) ctx.step_wait(right, rt::RankCtx::step_value(seq, k));
      const std::size_t len = v.sub_len(l, t);
      if (len > 0) {
        std::byte* slot = shm + static_cast<std::size_t>(l) * v.slice;
        const std::byte* src = sb + v.off[l] + t * v.slice;
        if (j == 0) {
          copy::dispatch_copy(opts.policy, slot, src, len,
                              /*temporal_hint=*/true, C, W);
        } else if (j < p - 1) {
          copy::reduce_inplace(slot, src, len, d, op);
        } else {  // l == r: deliver my (ragged) block
          const bool nt = copy::use_nt_store(opts.policy,
                                             /*temporal_hint=*/false, C, W,
                                             len);
          copy::reduce_out(rb + t * v.slice, slot, src, len, d, op, nt);
        }
      }
      ctx.step_publish(rt::RankCtx::step_value(seq, k + 1));
    }
  }
  ctx.barrier();
}

void scatterv(RankCtx& ctx, const void* send, void* recv,
              const std::size_t* counts, Datatype d, int root,
              const CollOpts& opts) {
  const int p = ctx.nranks();
  const auto v = VarBlocks::make(p, counts, dtype_size(d), opts);
  if (v.total == 0) return;
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, v.total);
    return;
  }
  detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(static_cast<std::size_t>(p) * v.slice);
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = 2 * v.total + static_cast<std::size_t>(p) * v.slice;
  const int r = ctx.rank();

  for (std::size_t t = 0; t < v.nrounds; ++t) {
    if (r == root) {
      for (int b = 0; b < p; ++b) {
        const std::size_t lb = v.sub_len(b, t);
        if (lb > 0)
          copy::dispatch_copy(opts.policy,
                              shm + static_cast<std::size_t>(b) * v.slice,
                              sb + v.off[b] + t * v.slice, lb,
                              /*temporal_hint=*/true, C, W);
      }
    }
    ctx.barrier();
    const std::size_t mine = v.sub_len(r, t);
    if (mine > 0)
      copy::dispatch_copy(opts.policy, rb + t * v.slice,
                          shm + static_cast<std::size_t>(r) * v.slice, mine,
                          /*temporal_hint=*/false, C, W);
    ctx.barrier();
  }
}

void gatherv(RankCtx& ctx, const void* send, void* recv,
             const std::size_t* counts, Datatype d, int root,
             const CollOpts& opts) {
  const int p = ctx.nranks();
  const auto v = VarBlocks::make(p, counts, dtype_size(d), opts);
  if (v.total == 0) return;
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, v.total);
    return;
  }
  detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(static_cast<std::size_t>(p) * v.slice);
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = 2 * v.total + static_cast<std::size_t>(p) * v.slice;
  const int r = ctx.rank();

  for (std::size_t t = 0; t < v.nrounds; ++t) {
    const std::size_t mine = v.sub_len(r, t);
    if (mine > 0)
      copy::dispatch_copy(opts.policy,
                          shm + static_cast<std::size_t>(r) * v.slice,
                          sb + t * v.slice, mine, /*temporal_hint=*/true, C,
                          W);
    ctx.barrier();
    if (r == root) {
      for (int b = 0; b < p; ++b) {
        const std::size_t lb = v.sub_len(b, t);
        if (lb > 0)
          copy::dispatch_copy(opts.policy, rb + v.off[b] + t * v.slice,
                              shm + static_cast<std::size_t>(b) * v.slice,
                              lb, /*temporal_hint=*/false, C, W);
      }
    }
    ctx.barrier();
  }
}

}  // namespace yhccl::coll
