file(REMOVE_RECURSE
  "libyhccl_runtime.a"
)
