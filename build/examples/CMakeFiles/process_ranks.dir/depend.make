# Empty dependencies file for process_ranks.
# This may be replaced when dependencies are built.
