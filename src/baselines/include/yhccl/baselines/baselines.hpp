// Baseline collective algorithms the paper compares against (§5.3, §5.5).
//
// These are from-scratch implementations of the algorithms the evaluated
// MPI libraries use for intra-node collectives, per the paper's own
// description:
//
//  * Ring [45] — bandwidth-optimal send/recv ring.  `Transport::two_copy`
//    models the classic shared-memory eager path (copy-in + copy-out per
//    hop, Open MPI / MPICH style); `Transport::single_copy` models the
//    kernel-assisted (CMA/KNEM) path where the receiver pulls straight from
//    the sender's buffer.
//  * Rabenseifner [50] — recursive-halving reduce-scatter + recursive-
//    doubling allgather; logarithmic step count, wins on small messages.
//  * DPML [13] — data-partitioning multi-leader parallel reduction: every
//    rank copies its whole buffer to shared memory, then all ranks reduce
//    disjoint partitions (a thin wrapper over coll::dpml_two_level_* with
//    the hierarchy disabled).
//  * RG [34] — the Intel-style pipelined k-ary tree reduction on shared
//    memory (children copy slices into per-rank shared slots, parents
//    reduce), plus the derived all-reduce (tree reduce + pipelined bcast).
//  * XPMEM-direct [30, 31] — Hashmi-style shared-address-space collectives:
//    ranks map peers' buffers and reduce/copy them in place with
//    memmove-threshold copies (no adaptive NT decision).  Requires the
//    thread backend (or a kernel allowing process_vm_readv).
//
// All functions follow the buffer semantics of yhccl::coll.
#pragma once

#include "yhccl/coll/coll.hpp"
#include "yhccl/runtime/team.hpp"

namespace yhccl::base {

using coll::CollOpts;
using rt::RankCtx;

enum class Transport {
  two_copy,     ///< eager shared-memory FIFO (copy-in + copy-out)
  single_copy,  ///< rendezvous pull (kernel-assisted model)
};

// ---- Ring [45] -------------------------------------------------------------

void ring_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                         std::size_t count, Datatype d, ReduceOp op,
                         Transport t = Transport::two_copy);
void ring_allgather(RankCtx& ctx, const void* send, void* recv,
                    std::size_t count, Datatype d,
                    Transport t = Transport::two_copy);
void ring_allreduce(RankCtx& ctx, const void* send, void* recv,
                    std::size_t count, Datatype d, ReduceOp op,
                    Transport t = Transport::two_copy);

// ---- Rabenseifner [50] (rank count must be a power of two) -----------------

void rabenseifner_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                                 std::size_t count, Datatype d, ReduceOp op,
                                 Transport t = Transport::two_copy);
void rabenseifner_allreduce(RankCtx& ctx, const void* send, void* recv,
                            std::size_t count, Datatype d, ReduceOp op,
                            Transport t = Transport::two_copy);

// ---- DPML [13] --------------------------------------------------------------

void dpml_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                         std::size_t count, Datatype d, ReduceOp op,
                         const CollOpts& opts = {});
void dpml_allreduce(RankCtx& ctx, const void* send, void* recv,
                    std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts = {});
void dpml_reduce(RankCtx& ctx, const void* send, void* recv,
                 std::size_t count, Datatype d, ReduceOp op, int root,
                 const CollOpts& opts = {});

// ---- RG pipelined tree [34] -------------------------------------------------

struct RgOpts {
  int branch = 2;                   ///< k, branching degree
  std::size_t slice = 128u << 10;   ///< pipeline slice size (paper §5.3)
};

void rg_reduce(RankCtx& ctx, const void* send, void* recv, std::size_t count,
               Datatype d, ReduceOp op, int root, const RgOpts& opts = {});
void rg_allreduce(RankCtx& ctx, const void* send, void* recv,
                  std::size_t count, Datatype d, ReduceOp op,
                  const RgOpts& opts = {});

// ---- XPMEM-style direct shared-address-space collectives [30, 31] ----------

void xpmem_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                          std::size_t count, Datatype d, ReduceOp op);
void xpmem_allreduce(RankCtx& ctx, const void* send, void* recv,
                     std::size_t count, Datatype d, ReduceOp op);
void xpmem_reduce(RankCtx& ctx, const void* send, void* recv,
                  std::size_t count, Datatype d, ReduceOp op, int root);
void xpmem_broadcast(RankCtx& ctx, void* buf, std::size_t count, Datatype d,
                     int root);
void xpmem_allgather(RankCtx& ctx, const void* send, void* recv,
                     std::size_t count, Datatype d);

// ---- Binomial trees (MPICH's small-message algorithms) ----------------------
// log2(p) rounds of point-to-point messages; latency-optimal, the reason
// tree-based libraries win the small-message end of Figs. 11/15/16b.

void binomial_broadcast(RankCtx& ctx, void* buf, std::size_t count,
                        Datatype d, int root,
                        Transport t = Transport::two_copy);
void binomial_reduce(RankCtx& ctx, const void* send, void* recv,
                     std::size_t count, Datatype d, ReduceOp op, int root,
                     Transport t = Transport::two_copy);

/// Growable thread-local working buffer for the send/recv baselines.
std::byte* tls_buffer(std::size_t bytes);

}  // namespace yhccl::base
