// Example: extract an application's communication kernel with the trace
// recorder, then replay it under different algorithm arms — the paper's
// §5.6 methodology ("how much faster would this app's collectives be
// under YHCCL?") as a three-step library workflow.
//
//   $ ./examples/trace_replay [nranks] [tsteps]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "yhccl/apps/miniamr.hpp"
#include "yhccl/coll/trace.hpp"
#include "yhccl/runtime/thread_team.hpp"

using namespace yhccl;
using namespace yhccl::coll;

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 4;
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = p >= 4 ? 2 : 1;
  rt::ThreadTeam team(cfg);

  // Step 1: run the application once with the recording wrapper.
  apps::miniamr::Config acfg;
  acfg.tsteps = argc > 2 ? std::atoi(argv[2]) : 6;
  acfg.refine_metric_len = 131072;  // 1 MB control all-reduces
  std::vector<CollTrace> traces(p);
  team.run([&](rt::RankCtx& ctx) {
    auto& tr = traces[ctx.rank()];
    apps::miniamr::run_rank(
        ctx, acfg,
        [&tr](rt::RankCtx& c, const double* in, double* out, std::size_t n) {
          allreduce(tr, c, in, out, n, Datatype::f64, ReduceOp::sum);
        });
  });
  const CollTrace& kernel = traces[0];
  std::printf("recorded %zu collective calls, %.1f ms of communication\n",
              kernel.size(), kernel.recorded_seconds() * 1e3);

  // Step 2: the trace serializes to CSV (shareable, diffable).
  const auto csv = kernel.to_csv();
  std::printf("trace head:\n%.*s...\n", 120, csv.c_str());

  // Step 3: replay the kernel under each reduction engine.
  std::printf("\n%-14s %12s\n", "engine", "replay(ms)");
  for (auto alg : {Algorithm::automatic, Algorithm::ma_socket_aware,
                   Algorithm::ma_flat, Algorithm::dpml_two_level}) {
    CollOpts o;
    o.algorithm = alg;
    std::vector<ReplayResult> res(p);
    team.run([&](rt::RankCtx& ctx) {
      res[ctx.rank()] = replay(ctx, kernel, o);
    });
    double worst = 0;
    for (const auto& r : res) worst = std::max(worst, r.seconds);
    std::printf("%-14s %12.2f\n", algorithm_name(alg), worst * 1e3);
  }
  return 0;
}
