#ifdef YHCCL_MC

#include "yhccl/mc/protocols.hpp"

#include <unistd.h>

#include <cstring>
#include <memory>

#include "yhccl/analysis/hb.hpp"
#include "yhccl/common/error.hpp"
#include "yhccl/runtime/channel.hpp"
#include "yhccl/runtime/plan_registry.hpp"
#include "yhccl/runtime/remote_access.hpp"
#include "yhccl/runtime/sync.hpp"
#include "yhccl/trace/export.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::mc {

namespace {

using yhccl::analysis::hb_read;
using yhccl::analysis::hb_write;

// ---------------------------------------------------------------------------
// flags: step_publish / spin_wait_ge payload visibility
// ---------------------------------------------------------------------------

Spec flags_spec(int n) {
  struct St {
    rt::PaddedFlag flag;
    mc::atomic<std::uint64_t> payload{0};
  };
  auto st = std::make_shared<St>();
  Spec s;
  s.nthreads = n;
  s.reset = [st] {
    st->flag.v.store(0, std::memory_order_relaxed);
    st->payload.store(0, std::memory_order_relaxed);
    set_label(&st->flag.v, sizeof st->flag.v, "step-flag");
    set_label(&st->payload, sizeof st->payload, "payload");
  };
  s.body = [st](int r) {
    if (r == 0) {
      st->payload.store(42, std::memory_order_relaxed);
      rt::flag_publish(st->flag, 1);
    } else {
      rt::spin_wait_ge(st->flag.v, 1);
      require(st->payload.load(std::memory_order_relaxed) == 42,
              "progress flag observed without its payload");
    }
  };
  return s;
}

// ---------------------------------------------------------------------------
// barrier / dissemination: two write-barrier-read-barrier episodes.  The
// trailing barrier of each episode fences the reads from the next episode's
// writes, so a correct barrier admits exactly one value per (episode, slot).
// ---------------------------------------------------------------------------

template <class St, class Arrive>
void barrier_episodes(const std::shared_ptr<St>& st, int n, int r,
                      Arrive&& arrive) {
  // Two episodes with a trailing barrier catch cross-epoch leaks (a rank
  // racing ahead into the next round).  That depth is exhaustively explored
  // at 2 ranks; at >= 3 a single write-arrive-read round keeps the state
  // space within the CI budget while still covering the n-rank release.
  const std::uint64_t episodes = n == 2 ? 2 : 1;
  for (std::uint64_t e = 0; e < episodes; ++e) {
    st->slot[r].store(100 * e + 10 + static_cast<std::uint64_t>(r),
                      std::memory_order_relaxed);
    arrive();
    for (int q = 0; q < n; ++q)
      require(st->slot[q].load(std::memory_order_relaxed) ==
                  100 * e + 10 + static_cast<std::uint64_t>(q),
              "barrier admitted a stale or early episode value");
    if (n == 2) arrive();
  }
}

Spec barrier_spec(int n) {
  struct St {
    rt::BarrierState bar;
    std::uint32_t sense[4];
    mc::atomic<std::uint64_t> slot[4];
  };
  auto st = std::make_shared<St>();
  Spec s;
  s.nthreads = n;
  s.reset = [st, n] {
    rt::barrier_init(st->bar, static_cast<std::uint32_t>(n));
    for (int r = 0; r < 4; ++r) {
      st->sense[r] = 0;
      st->slot[r].store(0, std::memory_order_relaxed);
    }
    set_label(&st->bar.arrived, sizeof st->bar.arrived, "arrived");
    set_label(&st->bar.sense, sizeof st->bar.sense, "sense");
    set_label(st->slot, sizeof st->slot, "episode-slot");
  };
  s.body = [st, n](int r) {
    barrier_episodes(st, n, r,
                     [&] { rt::barrier_arrive(st->bar, st->sense[r]); });
  };
  return s;
}

Spec dissemination_spec(int n) {
  struct St {
    rt::DisseminationBarrierState bar;
    rt::DisseminationToken tok[4];
    mc::atomic<std::uint64_t> slot[4];
  };
  auto st = std::make_shared<St>();
  Spec s;
  s.nthreads = n;
  s.reset = [st, n] {
    rt::dissemination_init(st->bar, static_cast<std::uint32_t>(n));
    // Only the flags the n-rank instance can touch need clearing.
    for (int round = 0; round < rt::DisseminationBarrierState::kMaxRounds;
         ++round)
      for (int r = 0; r < n; ++r)
        st->bar.flags[round][r].v.store(0, std::memory_order_relaxed);
    for (int r = 0; r < 4; ++r) {
      st->tok[r] = rt::DisseminationToken{};
      st->slot[r].store(0, std::memory_order_relaxed);
    }
    set_label(st->slot, sizeof st->slot, "episode-slot");
  };
  s.body = [st, n](int r) {
    barrier_episodes(st, n, r,
                     [&] { rt::dissemination_arrive(st->bar, r, st->tok[r]); });
  };
  return s;
}

// ---------------------------------------------------------------------------
// fifo: eager FIFO payload/meta publication and slot reuse.  Three messages
// over kSlots == 2 make the third push reuse slot 0, exercising the
// head-release (consumer-frees-slot) edge; 3 ranks relay through a second
// channel so the middle rank runs both protocol roles.
// ---------------------------------------------------------------------------

constexpr std::size_t kFifoChunk = 8;

struct FifoSt {
  rt::FifoChannel ch01, ch12;
  alignas(8) std::byte data01[rt::FifoChannel::kSlots * kFifoChunk];
  alignas(8) std::byte data12[rt::FifoChannel::kSlots * kFifoChunk];
  std::uint64_t vals[3];
};

void fifo_reset_channel(rt::FifoChannel& ch) {
  ch.head.store(0, std::memory_order_relaxed);
  ch.tail.store(0, std::memory_order_relaxed);
  ch.rndv_posted.store(0, std::memory_order_relaxed);
  ch.rndv_done.store(0, std::memory_order_relaxed);
  for (auto& m : ch.meta) m = {};
  ch.rndv_ptr = nullptr;
  ch.rndv_bytes = 0;
  ch.rndv_pid = 0;
}

Spec fifo_spec(int n) {
  auto st = std::make_shared<FifoSt>();
  Spec s;
  s.nthreads = n;
  const int nmsg = n == 2 ? 3 : 2;  // 3 ranks relay: keep the space bounded
  s.reset = [st] {
    fifo_reset_channel(st->ch01);
    fifo_reset_channel(st->ch12);
    std::memset(st->data01, 0, sizeof st->data01);
    std::memset(st->data12, 0, sizeof st->data12);
    st->vals[0] = 0xA1;
    st->vals[1] = 0xA2;
    st->vals[2] = 0xA3;
    set_label(&st->ch01.head, sizeof st->ch01.head, "fifo01.head");
    set_label(&st->ch01.tail, sizeof st->ch01.tail, "fifo01.tail");
    set_label(&st->ch12.head, sizeof st->ch12.head, "fifo12.head");
    set_label(&st->ch12.tail, sizeof st->ch12.tail, "fifo12.tail");
  };
  s.body = [st, n, nmsg](int r) {
    constexpr int kTag = 7;
    if (r == 0) {
      for (int i = 0; i < nmsg; ++i)
        rt::fifo_push_chunk(st->ch01, st->data01, kFifoChunk, &st->vals[i],
                            sizeof(std::uint64_t), kTag);
      return;
    }
    const bool last = r == n - 1;
    auto& ch = r == 1 ? st->ch01 : st->ch12;
    auto* data = r == 1 ? st->data01 : st->data12;
    for (int i = 0; i < nmsg; ++i) {
      std::uint64_t v = 0;
      const std::size_t len =
          rt::fifo_pop_chunk(ch, data, kFifoChunk, &v, sizeof v, kTag);
      require(len == sizeof v, "fifo chunk length corrupted");
      if (last)
        require(v == st->vals[i], "fifo delivered a stale or torn payload");
      else
        rt::fifo_push_chunk(st->ch12, st->data12, kFifoChunk, &v, sizeof v,
                            kTag);
    }
  };
  return s;
}

// ---------------------------------------------------------------------------
// rndv: rendezvous descriptor publication + sender buffer reuse.  Two posts
// over one reused payload buffer: the drained edge must order the receiver's
// pull before the sender's rewrite.  3 ranks chain 0 -> 1 -> 2.
// ---------------------------------------------------------------------------

Spec rndv_spec(int n) {
  struct St {
    rt::FifoChannel ch01, ch12;
    std::uint64_t payload0;  // rank 0's buffer, reused across both posts
    std::uint64_t relay1;    // rank 1's buffer in the 3-rank chain
    std::uint64_t out[2];
  };
  auto st = std::make_shared<St>();
  Spec s;
  s.nthreads = n;
  const int nposts = n == 2 ? 2 : 1;
  s.reset = [st] {
    fifo_reset_channel(st->ch01);
    fifo_reset_channel(st->ch12);
    st->payload0 = 0;
    st->relay1 = 0;
    st->out[0] = st->out[1] = 0;
    set_label(&st->ch01.rndv_posted, sizeof st->ch01.rndv_posted,
              "rndv01.posted");
    set_label(&st->ch01.rndv_done, sizeof st->ch01.rndv_done, "rndv01.done");
  };
  s.body = [st, n, nposts](int r) {
    const std::uint64_t vals[2] = {0xAB, 0xCD};
    if (r == 0) {
      for (int i = 0; i < nposts; ++i) {
        hb_write(&st->payload0, sizeof st->payload0, "rndv payload");
        st->payload0 = vals[i];
        const std::uint64_t t =
            rt::rndv_post(st->ch01, &st->payload0, sizeof st->payload0,
                          getpid());
        rt::rndv_wait_drained(st->ch01, t);
      }
      return;
    }
    if (r == 1 && n == 3) {
      rt::rndv_pull(st->ch01, &st->relay1, sizeof st->relay1,
                    rt::RemoteMode::direct);
      const std::uint64_t t =
          rt::rndv_post(st->ch12, &st->relay1, sizeof st->relay1, getpid());
      rt::rndv_wait_drained(st->ch12, t);
      return;
    }
    auto& ch = n == 2 ? st->ch01 : st->ch12;
    for (int i = 0; i < nposts; ++i) {
      rt::rndv_pull(ch, &st->out[i], sizeof st->out[i],
                    rt::RemoteMode::direct);
      require(st->out[i] == vals[i],
              "rendezvous pull observed a stale or torn payload");
    }
  };
  return s;
}

// ---------------------------------------------------------------------------
// pagelock: the CMA page-lock must order critical sections (lock acquire
// joins the previous unlock release); the guarded counter is plain data, so
// a missing edge is a data race on it.
// ---------------------------------------------------------------------------

Spec pagelock_spec(int n) {
  struct St {
    rt::PageLockTable locks;
    std::uint64_t counter;
  };
  auto st = std::make_shared<St>();
  Spec s;
  s.nthreads = n;
  s.reset = [st] {
    st->locks.reset();
    st->counter = 0;
    set_label(&st->counter, sizeof st->counter, "guarded-counter");
  };
  s.body = [st](int) {
    st->locks.lock(0);
    hb_read(&st->counter, sizeof st->counter, "guarded counter");
    hb_write(&st->counter, sizeof st->counter, "guarded counter");
    ++st->counter;
    st->locks.unlock(0);
  };
  s.check_final = [st, n] {
    require(st->counter == static_cast<std::uint64_t>(n),
            "page lock lost an increment");
  };
  return s;
}

// ---------------------------------------------------------------------------
// seqlock: RemoteWindow readers must only ever observe one of the fully
// published descriptors, never a torn mix.  Two publishes make every mixed
// tuple distinguishable from the allowed ones.
// ---------------------------------------------------------------------------

Spec seqlock_spec(int n) {
  struct St {
    rt::RemoteWindow w;
    char bufa, bufb;
  };
  auto st = std::make_shared<St>();
  Spec s;
  s.nthreads = n;
  s.reset = [st] {
    st->w.seq.store(0, std::memory_order_relaxed);
    st->w.ptr.store(nullptr, std::memory_order_relaxed);
    st->w.bytes.store(0, std::memory_order_relaxed);
    st->w.pid.store(0, std::memory_order_relaxed);
    set_label(&st->w.seq, sizeof st->w.seq, "window.seq");
    set_label(&st->w.ptr, sizeof st->w.ptr, "window.ptr");
    set_label(&st->w.bytes, sizeof st->w.bytes, "window.bytes");
    set_label(&st->w.pid, sizeof st->w.pid, "window.pid");
  };
  s.body = [st, n](int r) {
    // Two publishes make every torn mix distinguishable from the allowed
    // tuples; the second is exhaustively explored at one reader (n == 2)
    // and dropped at two readers to bound the space.
    const bool republish = n == 2;
    if (r == 0) {
      rt::window_publish(st->w, &st->bufa, 1, 1);
      if (republish) rt::window_publish(st->w, &st->bufb, 2, 2);
      return;
    }
    const rt::RemoteBuf rb = rt::window_read(st->w);
    const bool initial = rb.ptr == nullptr && rb.bytes == 0 && rb.pid == 0;
    const bool first = rb.ptr == &st->bufa && rb.bytes == 1 && rb.pid == 1;
    const bool second = republish && rb.ptr == &st->bufb && rb.bytes == 2 &&
                        rb.pid == 2;
    require(initial || first || second,
            "seqlock reader returned a torn descriptor");
  };
  return s;
}

// ---------------------------------------------------------------------------
// plan: registry claim must publish the slot's fields with the hash CAS,
// and a plan word committed before a barrier must be visible after it.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kPlanHash = 0x1234567;
constexpr std::uint64_t kPlanFields = 0xBEEF;
constexpr std::uint64_t kPlanWord = 0xCAFE;

Spec plan_spec(int n) {
  struct St {
    std::unique_ptr<std::byte[]> mem;
    rt::PlanRegistry* reg = nullptr;
    rt::BarrierState bar;
    std::uint32_t sense[4];
  };
  auto st = std::make_shared<St>();
  const std::uint32_t slots = 16;  // the registry's minimum (== probe window)
  st->mem = std::make_unique<std::byte[]>(
      rt::PlanRegistry::required_bytes(slots));
  Spec s;
  s.nthreads = n;
  s.reset = [st, slots, n] {
    std::memset(st->mem.get(), 0, rt::PlanRegistry::required_bytes(slots));
    st->reg = rt::PlanRegistry::create(st->mem.get(),
                                       rt::PlanRegistry::required_bytes(slots),
                                       slots, 0);
    rt::barrier_init(st->bar, static_cast<std::uint32_t>(n));
    for (auto& se : st->sense) se = 0;
  };
  s.body = [st, n](int r) {
    rt::PlanSlot* slot = nullptr;
    if (r < (n == 2 ? 1 : 2)) {
      // Claimers race the insert CAS with identical fields; the winner
      // commits the plan word before the barrier.
      bool inserted = false;
      slot = st->reg->acquire(kPlanHash, kPlanFields, &inserted);
      require(slot != nullptr, "plan registry probe window exhausted");
      if (inserted)
        slot->plan.store(kPlanWord, std::memory_order_release);
    } else {
      while ((slot = st->reg->find(kPlanHash)) == nullptr) spin_pause();
    }
    require(slot->fields.load(std::memory_order_relaxed) == kPlanFields,
            "plan slot hash visible without its fields");
    rt::barrier_arrive(st->bar, st->sense[r]);
    require(slot->plan.load(std::memory_order_relaxed) == kPlanWord,
            "committed plan word invisible after the trailing barrier");
  };
  return s;
}

// ---------------------------------------------------------------------------
// quarantine: message-passing shape of PlanRegistry::quarantine.  The
// committed plan word is cleared *before* the quarantine mark is raised
// (release CAS), so any rank that observes the mark (acquire) must also
// observe the cleared word — never the poisoned plan being pinned out of
// rotation.  Weakening the mark's order lets a reader honor the quarantine
// while still serving the stale word it was meant to bury.
// ---------------------------------------------------------------------------

Spec quarantine_spec(int n) {
  struct St {
    std::unique_ptr<std::byte[]> mem;
    rt::PlanRegistry* reg = nullptr;
  };
  auto st = std::make_shared<St>();
  const std::uint32_t slots = 16;  // the registry's minimum (== probe window)
  st->mem = std::make_unique<std::byte[]>(
      rt::PlanRegistry::required_bytes(slots));
  Spec s;
  s.nthreads = n;
  s.reset = [st, slots] {
    std::memset(st->mem.get(), 0, rt::PlanRegistry::required_bytes(slots));
    st->reg = rt::PlanRegistry::create(st->mem.get(),
                                       rt::PlanRegistry::required_bytes(slots),
                                       slots, 0);
  };
  s.body = [st](int r) {
    if (r == 0) {
      bool inserted = false;
      rt::PlanSlot* slot = st->reg->acquire(kPlanHash, kPlanFields, &inserted);
      require(slot != nullptr, "plan registry probe window exhausted");
      slot->plan.store(kPlanWord, std::memory_order_release);
      require(st->reg->quarantine(kPlanHash, /*until_epoch=*/5),
              "quarantine refused a cached key");
      return;
    }
    rt::PlanSlot* slot = nullptr;
    while ((slot = st->reg->find(kPlanHash)) == nullptr) spin_pause();
    while (!rt::PlanRegistry::quarantined(*slot, /*epoch=*/0)) spin_pause();
    require(slot->plan.load(std::memory_order_relaxed) == 0,
            "quarantine mark observed with the buried plan word");
  };
  return s;
}

// ---------------------------------------------------------------------------
// ring: the trace ring's counter release must publish the 32-byte slot
// record to a concurrent harvester (count/read pair).
// ---------------------------------------------------------------------------

Spec ring_spec(int n) {
  struct St {
    std::unique_ptr<std::byte[]> mem;
    trace::TraceBuffer* buf = nullptr;
  };
  auto st = std::make_shared<St>();
  constexpr std::uint32_t kSlots = 4;
  const std::size_t bytes = trace::TraceBuffer::required_bytes(1, kSlots);
  st->mem = std::make_unique<std::byte[]>(bytes);
  Spec s;
  s.nthreads = n;
  s.reset = [st, bytes] {
    std::memset(st->mem.get(), 0, bytes);
    st->buf = trace::TraceBuffer::create(st->mem.get(), bytes, 1, kSlots,
                                         trace::Mode::spans);
  };
  s.body = [st](int r) {
    if (r == 0) {
      for (std::uint64_t i = 0; i < 2; ++i) {
        trace::Rec rec{};
        rec.t0 = rec.t1 = i + 1;
        rec.arg = 111 * (i + 1);
        st->buf->push(0, rec);
      }
      return;
    }
    while (st->buf->count(0) < 2) spin_pause();
    for (std::uint64_t i = 0; i < 2; ++i) {
      const trace::Rec rec = st->buf->read(0, i);
      require(rec.arg == 111 * (i + 1), "trace ring slot corrupted");
    }
  };
  return s;
}

}  // namespace

const std::vector<std::string>& protocol_names() {
  static const std::vector<std::string> names = {
      "flags", "barrier", "dissemination", "fifo",       "rndv",
      "pagelock", "seqlock", "plan",        "quarantine", "ring"};
  return names;
}

bool protocol_supports(const std::string& name, int nthreads) {
  if (nthreads < 2) return false;
  if (name == "fifo" || name == "rndv" || name == "ring" || name == "plan" ||
      name == "seqlock" || name == "quarantine")
    return nthreads <= 3;
  return nthreads <= 4;
}

Spec protocol_spec(const std::string& name, int nthreads) {
  YHCCL_REQUIRE(protocol_supports(name, nthreads),
                "unknown model-checker protocol or unsupported rank count");
  if (name == "flags") return flags_spec(nthreads);
  if (name == "barrier") return barrier_spec(nthreads);
  if (name == "dissemination") return dissemination_spec(nthreads);
  if (name == "fifo") return fifo_spec(nthreads);
  if (name == "rndv") return rndv_spec(nthreads);
  if (name == "pagelock") return pagelock_spec(nthreads);
  if (name == "seqlock") return seqlock_spec(nthreads);
  if (name == "plan") return plan_spec(nthreads);
  if (name == "quarantine") return quarantine_spec(nthreads);
  return ring_spec(nthreads);
}

Result check_protocol(const std::string& name, int nthreads,
                      const Options& opt) {
  clear_labels();
  const Result r = explore(protocol_spec(name, nthreads), opt);
  clear_labels();
  return r;
}

const std::vector<Mutation>& mutation_table() {
  static const std::vector<Mutation> table = {
      {WeakPoint::barrier_join_rmw, "barrier", 2},
      {WeakPoint::barrier_sense_release, "barrier", 2},
      {WeakPoint::dissem_signal_rmw, "dissemination", 2},
      {WeakPoint::spin_acquire, "flags", 2},
      {WeakPoint::step_publish_release, "flags", 2},
      {WeakPoint::seqlock_writer_fence, "seqlock", 2},
      {WeakPoint::seqlock_commit_release, "seqlock", 2},
      {WeakPoint::seqlock_reader_fence, "seqlock", 2},
      {WeakPoint::fifo_tail_release, "fifo", 2},
      {WeakPoint::fifo_head_release, "fifo", 2},
      {WeakPoint::rndv_post_release, "rndv", 2},
      {WeakPoint::rndv_done_release, "rndv", 2},
      {WeakPoint::pagelock_acquire, "pagelock", 2},
      {WeakPoint::pagelock_release, "pagelock", 2},
      {WeakPoint::ring_push_release, "ring", 2},
      {WeakPoint::plan_claim_release, "plan", 2},
      {WeakPoint::quar_publish_release, "quarantine", 2},
  };
  return table;
}

Result check_mutation(const Mutation& m, Options opt) {
  opt.mutation = m.point;
  clear_labels();
  const Result r = explore(protocol_spec(m.protocol, m.nthreads), opt);
  clear_labels();
  return r;
}

std::string counterexample_flight(const std::string& protocol, int nthreads,
                                  const std::string& schedule,
                                  WeakPoint mutation) {
  const Spec spec = protocol_spec(protocol, nthreads);

  // One ring per model rank, outside the checker's jurisdiction: the
  // passthrough range keeps the recorder's own atomics off the schedule.
  constexpr std::uint32_t kSlots = 256;
  const std::size_t bytes =
      trace::TraceBuffer::required_bytes(nthreads, kSlots);
  auto mem = std::make_unique<std::byte[]>(bytes);
  trace::TraceBuffer* buf = trace::TraceBuffer::create(
      mem.get(), bytes, nthreads, kSlots, trace::Mode::flight);

  ReplayEnv env;
  env.passthrough = mem.get();
  env.passthrough_bytes = bytes;
  env.on_resume = [buf](int tid) {
    auto& c = trace::detail::tl_trace;
    if (tid < 0) {
      c = trace::detail::TraceCtx{};
    } else {
      c.buf = buf;
      c.ring = tid;
    }
  };

  Options opt = Options::from_env();
  opt.mutation = mutation;
  const Result r = replay(spec, schedule, opt, &env);
  trace::detail::tl_trace = trace::detail::TraceCtx{};

  trace::Harvest h(*buf);
  trace::FlightContext fc;
  fc.fault = r.violations.empty()
                 ? "schedule replayed clean"
                 : r.violations.front().kind + ": " +
                       r.violations.front().message;
  return h.flight_json(fc).dump(1);
}

}  // namespace yhccl::mc

#endif  // YHCCL_MC
