#include "yhccl/model/dav_model.hpp"

#include <algorithm>

namespace yhccl::model {

namespace {

using u64 = std::uint64_t;

u64 mul(std::size_t s, double factor) {
  return static_cast<u64>(static_cast<double>(s) * factor);
}

/// Rabenseifner's halving series: 1/2 + 1/4 + ... + 1/p == 1 - 1/p.
double halving_series(int p) { return 1.0 - 1.0 / p; }

/// RG tree series: 5k/(k+1) + 3k/(k+1)^2 + ... + 3k/p (levels while
/// (k+1)^i <= p).
double rg_series(int p, int k) {
  double sum = 0;
  double denom = k + 1;
  bool first = true;
  while (denom <= static_cast<double>(p)) {
    sum += (first ? 5.0 : 3.0) * k / denom;
    first = false;
    denom *= (k + 1);
  }
  if (first) sum = 5.0 * k / (k + 1);  // degenerate tiny trees
  return sum;
}

}  // namespace

namespace paper {

u64 ring_reduce_scatter(std::size_t s, int p) {
  return static_cast<u64>(s) * 5 * (p - 1);
}
u64 rabenseifner_reduce_scatter(std::size_t s, int p) {
  return mul(s, 5.0 * p * halving_series(p));
}
u64 dpml_reduce_scatter(std::size_t s, int p) {
  return static_cast<u64>(s) * (5 * static_cast<u64>(p) - 1);
}
u64 ma_reduce_scatter(std::size_t s, int p) {
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) - 1);
}
u64 socket_ma_reduce_scatter(std::size_t s, int p, int m) {
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) + 2 * m - 3);
}

u64 ring_allreduce(std::size_t s, int p) {
  return static_cast<u64>(s) * 7 * (p - 1);
}
u64 rabenseifner_allreduce(std::size_t s, int p) {
  return mul(s, 7.0 * p * halving_series(p));
}
u64 dpml_allreduce(std::size_t s, int p) {
  return static_cast<u64>(s) * (7 * static_cast<u64>(p) - 1);
}
u64 rg_allreduce(std::size_t s, int p, int k) {
  return mul(s, p * (rg_series(p, k) + 2.0));
}
u64 ma_allreduce(std::size_t s, int p) {
  return static_cast<u64>(s) * (5 * static_cast<u64>(p) - 1);
}
u64 socket_ma_allreduce(std::size_t s, int p, int m) {
  return static_cast<u64>(s) * (5 * static_cast<u64>(p) + 2 * m - 3);
}
u64 xpmem_allreduce(std::size_t s, int p) {
  return static_cast<u64>(s) * 5 * (p - 1);
}

u64 dpml_reduce(std::size_t s, int p) {
  return static_cast<u64>(s) * (5 * static_cast<u64>(p) + 1);
}
u64 rg_reduce(std::size_t s, int p, int k) {
  return mul(s, p * rg_series(p, k));
}
u64 ma_reduce(std::size_t s, int p) {
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) + 1);
}
u64 socket_ma_reduce(std::size_t s, int p, int m) {
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) + 2 * m - 1);
}

}  // namespace paper

namespace impl {

u64 ma_reduce_scatter(std::size_t s, int p) {
  return paper::ma_reduce_scatter(s, p);
}
u64 ma_allreduce(std::size_t s, int p) { return paper::ma_allreduce(s, p); }
u64 ma_reduce(std::size_t s, int p) { return paper::ma_reduce(s, p); }

// The socket-combination stage fuses the m per-socket partials in a single
// pass — (m+1)·(s/p) per rank instead of the pairwise chain's 3(m-1)·(s/p)
// the paper's tables assume.  Stage 1 is unchanged at s(3p-m); the total
// therefore loses its m-dependence:
//   s(3p-m) + s(m+1) = s(3p+1).
u64 socket_ma_reduce_scatter(std::size_t s, int p, int m) {
  (void)m;
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) + 1);
}
u64 socket_ma_allreduce(std::size_t s, int p, int m) {
  // reduce-scatter + the 2sp copy-out of the full result on every rank.
  return socket_ma_reduce_scatter(s, p, m) + 2 * static_cast<u64>(s) * p;
}
u64 socket_ma_reduce(std::size_t s, int p, int m) {
  // reduce-scatter + the root's 2s copy-out.
  return socket_ma_reduce_scatter(s, p, m) + 2 * static_cast<u64>(s);
}

// Our DPML delivers the scatter blocks / copy-out directly from the staged
// partials (one copy less than the paper's bookkeeping) and fuses the
// partitioned reduction of the p staged buffers into one (p+1)·(s/p)-byte
// pass per block: copy-in 2sp + fused stage s(p+1) = s(3p+1) for the
// scatter shape (flat/single-socket grouping, as the baseline runs it).
u64 dpml_reduce_scatter(std::size_t s, int p) {
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) + 1);
}
u64 dpml_allreduce(std::size_t s, int p) {
  return dpml_reduce_scatter(s, p) + 2 * static_cast<u64>(s) * p;
}

u64 ring_reduce_scatter_single_copy(std::size_t s, int p) {
  return static_cast<u64>(s) * 5 * (p - 1);  // == paper
}
u64 ring_reduce_scatter_two_copy(std::size_t s, int p) {
  return static_cast<u64>(s) * 7 * (p - 1);  // +2 for the eager copy-in
}
u64 ring_allreduce_single_copy(std::size_t s, int p) {
  return static_cast<u64>(s) * 7 * (p - 1);  // == paper
}
u64 ring_allreduce_two_copy(std::size_t s, int p) {
  return static_cast<u64>(s) * 11 * (p - 1);
}

// Adds the private working-copy initialization (2s per rank) the paper's
// table omits.
u64 rabenseifner_allreduce_single_copy(std::size_t s, int p) {
  return 2 * static_cast<u64>(s) * p + mul(s, 7.0 * (p - 1));
}

u64 xpmem_allreduce(std::size_t s, int p) {
  // Fused p-ary direct reduction s(p+1) + 2s(p-1) block gather.
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) - 1);
}

u64 pipelined_broadcast(std::size_t s, int p) {
  return 2 * static_cast<u64>(s) * p;  // root copy-in + (p-1) copy-outs
}
u64 pipelined_allgather(std::size_t s, int p) {
  // per rank: copy-in 2s + copy-out of all p blocks 2sp.
  return static_cast<u64>(p) * (2 * static_cast<u64>(s) +
                                2 * static_cast<u64>(s) * p);
}

// ---- operation-count simulators ---------------------------------------------
// Each simulator replays the corresponding implementation's loop structure
// over the same slicing arithmetic (coll/detail.hpp BlockSlicing), booking
// per-call contributions with the exact rules of the instrumented kernels:
//   copy (t/nt/dispatch/memmove)      loads n, stores n, 1 kernel call
//   reduce_inplace / reduce_out       loads 2n, stores n, 1 kernel call
//   reduce_out_multi(m)               loads m·n, stores n, 1 kernel call
//                                     (m == 1 degenerates to a copy)
// Zero-length calls book nothing (the kernels early-return and every call
// site guards len > 0).  Sync totals follow runtime/sync_counts.hpp.

namespace {

constexpr std::size_t kCl = 64;  // cacheline, mirrors common/types.hpp

std::size_t ru(std::size_t v, std::size_t a) { return (v + a - 1) / a * a; }
std::size_t cd(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Mirror of coll::detail::BlockSlicing (header cycle kept one-way: the
/// model must not depend on coll).  test_dav_models pins the two together.
struct SimSlicing {
  std::size_t total = 0, block = 0, slice = 0, nrounds = 0;

  static SimSlicing with_block(std::size_t total, std::size_t block,
                               std::size_t slice_min,
                               std::size_t slice_max) {
    SimSlicing s;
    s.total = total;
    s.block = block;
    const std::size_t imax = std::max(ru(slice_max, kCl), kCl);
    const std::size_t imin = std::max(slice_min, kCl);
    s.slice =
        std::clamp(ru(std::max<std::size_t>(block, 1), kCl), imin, imax);
    s.nrounds = std::max<std::size_t>(cd(block, s.slice), 1);
    return s;
  }

  static SimSlicing partitioned(std::size_t total, int parts,
                                std::size_t slice_min,
                                std::size_t slice_max) {
    const std::size_t b =
        ru(cd(total, static_cast<std::size_t>(parts)), kCl);
    return with_block(total, std::max<std::size_t>(b, kCl), slice_min,
                      slice_max);
  }

  std::size_t block_len(std::size_t l) const {
    const std::size_t start = l * block;
    return start >= total ? 0 : std::min(block, total - start);
  }
  std::size_t len(std::size_t l, std::size_t t) const {
    const std::size_t bl = block_len(l);
    const std::size_t start = t * slice;
    return start >= bl ? 0 : std::min(slice, bl - start);
  }
};

struct Sim {
  OpCounts c;

  void copy(std::size_t n) {
    if (n == 0) return;
    c.loads += n;
    c.stores += n;
    ++c.kernel_calls;
  }
  void reduce2(std::size_t n) {  // reduce_inplace / reduce_out
    if (n == 0) return;
    c.loads += 2 * static_cast<u64>(n);
    c.stores += n;
    ++c.kernel_calls;
  }
  void reduce_multi(int m, std::size_t n) {
    if (n == 0) return;
    if (m == 1) return copy(n);
    c.loads += static_cast<u64>(m) * n;
    c.stores += n;
    ++c.kernel_calls;
  }
  void barrier(int p) { c.barriers += static_cast<u64>(p); }  // team-uniform
};

/// Flat MA rounds (ma_reduce.cpp ma_round) for every rank, flag ops
/// included; the final-destination distinction does not change the counts
/// (reduce_out books like reduce_inplace).
void sim_ma_rounds(Sim& sim, const SimSlicing& S, int p) {
  for (int r = 0; r < p; ++r)
    for (std::size_t t = 0; t < S.nrounds; ++t)
      for (int j = 0; j < p; ++j) {
        const auto l = static_cast<std::size_t>((r + 1 + j) % p);
        if (t * static_cast<std::size_t>(p) + static_cast<std::size_t>(j) >
            0)
          ++sim.c.flag_waits;
        const std::size_t len = S.len(l, t);
        if (len > 0) {
          if (j == 0)
            sim.copy(len);
          else
            sim.reduce2(len);
        }
        ++sim.c.flag_posts;
      }
}

/// Per-round body of socket_ma.cpp socket_ma_core for all ranks.
void sim_socket_round(Sim& sim, const SimSlicing& S, std::size_t t, int p,
                      int m, bool fd_shm, int ncopyout) {
  const int n = p / m;
  for (int r = 0; r < p; ++r) {
    const int q = r % n;  // socket_rank under the even layout
    for (int j = 0; j < n; ++j) {
      const int u = (q + 1 + j) % n;
      if (t * static_cast<std::size_t>(n) + static_cast<std::size_t>(j) >
              0 &&
          n > 1)
        ++sim.c.flag_waits;
      for (int b = u * m; b < (u + 1) * m; ++b) {
        const std::size_t len = S.len(static_cast<std::size_t>(b), t);
        if (len == 0) continue;
        if (j == 0)
          sim.copy(len);
        else
          sim.reduce2(len);
      }
      ++sim.c.flag_posts;
    }
  }
  sim.barrier(p);
  for (int r = 0; r < p; ++r)
    sim.reduce_multi(m, S.len(static_cast<std::size_t>(r), t));
  sim.barrier(p);
  if (fd_shm) {
    for (int i = 0; i < ncopyout; ++i)
      for (int b = 0; b < p; ++b)
        sim.copy(S.len(static_cast<std::size_t>(b), t));
    sim.barrier(p);
  }
}

bool socket_layout_usable_sim(const OpGeometry& g) {
  return g.m > 1 && g.p % g.m == 0 && g.p / g.m >= 1;
}

/// DPML group layout (dpml_two_level.cpp make_groups + topology.hpp block
/// partition: the first p%m sockets take one extra rank).
struct SimGroups {
  int m = 0;
  int size[256] = {};
};

SimGroups sim_groups(const OpGeometry& g, bool flat) {
  SimGroups gr;
  if (flat || g.m == 1) {
    gr.m = g.p;
    for (int i = 0; i < gr.m; ++i) gr.size[i] = 1;
  } else {
    gr.m = g.m;
    const int q = g.p / g.m, rem = g.p % g.m;
    for (int x = 0; x < gr.m; ++x) gr.size[x] = q + (x < rem ? 1 : 0);
  }
  return gr;
}

enum class SimDeliver : int { scatter, all, root_only };

OpCounts sim_dpml(std::size_t total, std::size_t block, const OpGeometry& g,
                  SimDeliver deliver) {
  Sim sim;
  const int p = g.p;
  const std::size_t cap =
      g.scratch_bytes /
      ((static_cast<std::size_t>(p) + 1) * static_cast<std::size_t>(p) + 2);
  const std::size_t eff_slice_max = std::clamp<std::size_t>(
      g.dpml_chunk, kCl, std::max<std::size_t>(cap, kCl));
  const SimSlicing S =
      SimSlicing::with_block(total, block, g.slice_min, eff_slice_max);
  const SimGroups gr = sim_groups(g, g.dpml_flat);
  bool any_multi = false;
  for (int x = 0; x < gr.m; ++x) any_multi = any_multi || gr.size[x] > 1;

  for (std::size_t t = 0; t < S.nrounds; ++t) {
    for (int r = 0; r < p; ++r)  // copy-in: every rank stages all p blocks
      for (int b = 0; b < p; ++b)
        sim.copy(S.len(static_cast<std::size_t>(b), t));
    sim.barrier(p);
    for (int x = 0; x < gr.m; ++x) {  // stage 1: intra-group reductions
      const int n = gr.size[x];
      if (n <= 1) continue;
      for (int idx = 0; idx < n; ++idx) {
        const int lo = idx * p / n, hi = (idx + 1) * p / n;
        for (int b = lo; b < hi; ++b)
          sim.reduce_multi(n, S.len(static_cast<std::size_t>(b), t));
      }
    }
    if (any_multi) sim.barrier(p);
    for (int r = 0; r < p; ++r)  // stage 2: owners combine group leaders
      sim.reduce_multi(gr.m, S.len(static_cast<std::size_t>(r), t));
    sim.barrier(p);
    if (deliver != SimDeliver::scatter) {
      const int ncopy = deliver == SimDeliver::all ? p : 1;
      for (int i = 0; i < ncopy; ++i)
        for (int b = 0; b < p; ++b)
          sim.copy(S.len(static_cast<std::size_t>(b), t));
      sim.barrier(p);
    }
  }
  return sim.c;
}

}  // namespace

OpCounts ma_reduce_scatter_ops(std::size_t s, const OpGeometry& g) {
  Sim sim;
  const int p = g.p;
  if (s == 0) return sim.c;
  if (p == 1) {
    sim.copy(s);
    return sim.c;
  }
  const std::size_t B = s / static_cast<std::size_t>(p);
  if (B == 0) return sim.c;
  const SimSlicing S =
      SimSlicing::with_block(s, B, g.slice_min, g.slice_max);
  sim_ma_rounds(sim, S, p);
  sim.barrier(p);
  return sim.c;
}

OpCounts ma_allreduce_ops(std::size_t s, const OpGeometry& g) {
  Sim sim;
  const int p = g.p;
  if (s == 0) return sim.c;
  if (p == 1) {
    sim.copy(s);
    return sim.c;
  }
  const SimSlicing S =
      SimSlicing::partitioned(s, p, g.slice_min, g.slice_max);
  for (std::size_t t = 0; t < S.nrounds; ++t) {
    for (int r = 0; r < p; ++r)
      for (int j = 0; j < p; ++j) {
        const auto l = static_cast<std::size_t>((r + 1 + j) % p);
        if (t * static_cast<std::size_t>(p) + static_cast<std::size_t>(j) >
            0)
          ++sim.c.flag_waits;
        const std::size_t len = S.len(l, t);
        if (len > 0) {
          if (j == 0)
            sim.copy(len);
          else
            sim.reduce2(len);
        }
        ++sim.c.flag_posts;
      }
    sim.barrier(p);
    for (int r = 0; r < p; ++r)  // copy-out on every rank
      for (int b = 0; b < p; ++b)
        sim.copy(S.len(static_cast<std::size_t>(b), t));
    sim.barrier(p);
  }
  return sim.c;
}

OpCounts ma_reduce_ops(std::size_t s, const OpGeometry& g) {
  Sim sim;
  const int p = g.p;
  if (s == 0) return sim.c;
  if (p == 1) {
    sim.copy(s);
    return sim.c;
  }
  const SimSlicing S =
      SimSlicing::partitioned(s, p, g.slice_min, g.slice_max);
  for (std::size_t t = 0; t < S.nrounds; ++t) {
    for (int r = 0; r < p; ++r)
      for (int j = 0; j < p; ++j) {
        const auto l = static_cast<std::size_t>((r + 1 + j) % p);
        if (t * static_cast<std::size_t>(p) + static_cast<std::size_t>(j) >
            0)
          ++sim.c.flag_waits;
        const std::size_t len = S.len(l, t);
        if (len > 0) {
          if (j == 0)
            sim.copy(len);
          else
            sim.reduce2(len);
        }
        ++sim.c.flag_posts;
      }
    sim.barrier(p);
    for (int b = 0; b < p; ++b)  // copy-out on the root only
      sim.copy(S.len(static_cast<std::size_t>(b), t));
    sim.barrier(p);
  }
  return sim.c;
}

OpCounts socket_ma_reduce_scatter_ops(std::size_t s, const OpGeometry& g) {
  if (!socket_layout_usable_sim(g)) return ma_reduce_scatter_ops(s, g);
  Sim sim;
  const int p = g.p;
  if (s == 0) return sim.c;
  const std::size_t B = s / static_cast<std::size_t>(p);
  if (B == 0) return sim.c;
  const SimSlicing S =
      SimSlicing::with_block(s, B, g.slice_min, g.slice_max);
  for (std::size_t t = 0; t < S.nrounds; ++t)
    sim_socket_round(sim, S, t, p, g.m, /*fd_shm=*/false, 0);
  return sim.c;
}

OpCounts socket_ma_allreduce_ops(std::size_t s, const OpGeometry& g) {
  if (!socket_layout_usable_sim(g)) return ma_allreduce_ops(s, g);
  Sim sim;
  const int p = g.p;
  if (s == 0) return sim.c;
  const SimSlicing S =
      SimSlicing::partitioned(s, p, g.slice_min, g.slice_max);
  for (std::size_t t = 0; t < S.nrounds; ++t)
    sim_socket_round(sim, S, t, p, g.m, /*fd_shm=*/true, /*ncopyout=*/p);
  return sim.c;
}

OpCounts socket_ma_reduce_ops(std::size_t s, const OpGeometry& g) {
  if (!socket_layout_usable_sim(g)) return ma_reduce_ops(s, g);
  Sim sim;
  const int p = g.p;
  if (s == 0) return sim.c;
  const SimSlicing S =
      SimSlicing::partitioned(s, p, g.slice_min, g.slice_max);
  for (std::size_t t = 0; t < S.nrounds; ++t)
    sim_socket_round(sim, S, t, p, g.m, /*fd_shm=*/true, /*ncopyout=*/1);
  return sim.c;
}

OpCounts dpml_reduce_scatter_ops(std::size_t s, const OpGeometry& g) {
  Sim sim;
  if (s == 0) return sim.c;
  const std::size_t B = s / static_cast<std::size_t>(g.p);
  if (B == 0) return sim.c;
  if (g.p == 1) {
    sim.copy(B);
    return sim.c;
  }
  return sim_dpml(s, B, g, SimDeliver::scatter);
}

OpCounts dpml_allreduce_ops(std::size_t s, const OpGeometry& g) {
  Sim sim;
  if (s == 0) return sim.c;
  if (g.p == 1) {
    sim.copy(s);
    return sim.c;
  }
  const std::size_t B = std::max<std::size_t>(
      ru(cd(s, static_cast<std::size_t>(g.p)), kCl), kCl);
  return sim_dpml(s, B, g, SimDeliver::all);
}

OpCounts dpml_reduce_ops(std::size_t s, const OpGeometry& g) {
  Sim sim;
  if (s == 0) return sim.c;
  if (g.p == 1) {
    sim.copy(s);
    return sim.c;
  }
  const std::size_t B = std::max<std::size_t>(
      ru(cd(s, static_cast<std::size_t>(g.p)), kCl), kCl);
  return sim_dpml(s, B, g, SimDeliver::root_only);
}

OpCounts pipelined_broadcast_ops(std::size_t s, const OpGeometry& g) {
  Sim sim;
  const int p = g.p;
  if (s == 0 || p == 1) return sim.c;
  const std::size_t imax = std::max(ru(g.slice_max, kCl), kCl);
  const std::size_t I = std::min(ru(std::max<std::size_t>(s, 1), kCl), imax);
  const std::size_t nsl = cd(s, I);
  auto slice_len = [&](std::size_t k) { return std::min(I, s - k * I); };
  for (std::size_t k = 0; k < nsl; ++k) {
    sim.copy(slice_len(k));  // root fills the slot
    if (k >= 1)
      for (int r = 1; r < p; ++r) sim.copy(slice_len(k - 1));
    sim.barrier(p);
  }
  for (int r = 1; r < p; ++r) sim.copy(slice_len(nsl - 1));
  sim.barrier(p);
  return sim.c;
}

OpCounts pipelined_allgather_ops(std::size_t s, const OpGeometry& g) {
  Sim sim;
  const int p = g.p;
  if (s == 0) return sim.c;
  if (p == 1) {
    sim.copy(s);
    return sim.c;
  }
  const std::size_t imax = std::max(ru(g.slice_max, kCl), kCl);
  const std::size_t I = std::min(ru(std::max<std::size_t>(s, 1), kCl), imax);
  const std::size_t nsl = cd(s, I);
  auto slice_len = [&](std::size_t k) { return std::min(I, s - k * I); };
  for (int r = 0; r < p; ++r) {
    for (std::size_t k = 0; k < nsl; ++k) {
      sim.copy(slice_len(k));
      if (k >= 1)
        for (int a = 0; a < p; ++a) sim.copy(slice_len(k - 1));
    }
    for (int a = 0; a < p; ++a) sim.copy(slice_len(nsl - 1));
  }
  sim.c.barriers +=
      static_cast<u64>(p) * (static_cast<u64>(nsl) + 1);
  return sim.c;
}

OpCounts xpmem_allreduce_ops(std::size_t s, const OpGeometry& g) {
  Sim sim;
  const int p = g.p;
  if (s == 0) return sim.c;
  if (p == 1) {
    sim.copy(s);
    return sim.c;
  }
  const std::size_t B = std::max<std::size_t>(
      ru(cd(s, static_cast<std::size_t>(p)), kCl), kCl);
  auto blen = [&](int b) {
    const std::size_t start = static_cast<std::size_t>(b) * B;
    return start >= s ? std::size_t{0} : std::min(B, s - start);
  };
  sim.barrier(p);
  for (int r = 0; r < p; ++r) sim.reduce_multi(p, blen(r));
  sim.barrier(p);
  for (int r = 0; r < p; ++r)
    for (int b = 0; b < p; ++b)
      if (b != r) sim.copy(blen(b));
  sim.barrier(p);
  return sim.c;
}

}  // namespace impl

std::size_t nt_switch_point(std::size_t cache_capacity, int p,
                            std::size_t shm_bytes) {
  if (cache_capacity <= shm_bytes) return 0;
  return (cache_capacity - shm_bytes) / (2 * static_cast<std::size_t>(p));
}

std::size_t nt_switch_point_allreduce(std::size_t cache_capacity, int p,
                                      int m, std::size_t slice_max) {
  return nt_switch_point(cache_capacity, p,
                         static_cast<std::size_t>(m) *
                             static_cast<std::size_t>(p) * slice_max);
}

double time_from_dav(std::uint64_t dav_bytes, double dab_bytes_per_sec) {
  return dab_bytes_per_sec <= 0
             ? 0.0
             : static_cast<double>(dav_bytes) / dab_bytes_per_sec;
}

}  // namespace yhccl::model
