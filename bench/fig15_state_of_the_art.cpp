// Fig. 15 reproduction: YHCCL vs the state-of-the-art implementations for
// all five collectives (reduce-scatter, reduce, all-reduce, broadcast,
// all-gather).
//
// The closed-source comparators are substituted by from-scratch
// implementations of the algorithms those libraries use (DESIGN.md §3):
//   DPML        — multi-leader parallel reduction [13]
//   RG          — Intel-style pipelined k-ary shared-memory tree [34]
//   OpenMPI     — two-copy eager ring / pipelined memmove collectives
//   CMA-ring    — kernel-assisted single-copy ring (Open MPI + CMA)
//   MPICH       — Rabenseifner recursive halving/doubling (two-copy)
//   XPMEM       — Hashmi's direct shared-address-space collectives
// Send/receive buffers are rewritten between iterations (§5.5).
#include "bench_util.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  const auto sizes = default_sizes(16u << 10, 16u << 20);
  const std::size_t hi = sizes.back();
  const bool pow2 = (p & (p - 1)) == 0;
  auto cnt = [](std::size_t b) { return std::max<std::size_t>(b / 8, 1); };
  auto cnt_rs = [p](std::size_t b) {
    return std::max<std::size_t>(b / 8 / p, 1);
  };

  std::printf("Fig. 15 — YHCCL vs state-of-the-art (p=%d, m=%d)\n", p, m);
  Session session("fig15_state_of_the_art");

  // ---- (a) reduce-scatter --------------------------------------------------
  {
    std::vector<std::pair<std::string, CollArm>> arms = {
        {"YHCCL",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           coll::reduce_scatter(c, s, r, cnt_rs(b), Datatype::f64,
                                ReduceOp::sum);
         }},
        {"DPML",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::dpml_reduce_scatter(c, s, r, cnt_rs(b), Datatype::f64,
                                     ReduceOp::sum);
         }},
        {"OpenMPI",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::ring_reduce_scatter(c, s, r, cnt_rs(b), Datatype::f64,
                                     ReduceOp::sum,
                                     base::Transport::two_copy);
         }},
        {"CMA-ring",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::ring_reduce_scatter(c, s, r, cnt_rs(b), Datatype::f64,
                                     ReduceOp::sum,
                                     base::Transport::single_copy);
         }},
        {"XPMEM",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::xpmem_reduce_scatter(c, s, r, cnt_rs(b), Datatype::f64,
                                      ReduceOp::sum);
         }},
    };
    if (pow2)
      arms.push_back(
          {"MPICH",
           [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
             base::rabenseifner_reduce_scatter(c, s, r, cnt_rs(b),
                                               Datatype::f64, ReduceOp::sum,
                                               base::Transport::two_copy);
           }});
    sweep(team, "(a) reduce-scatter", arms, sizes, hi, hi, &session,
          "reduce_scatter")
        .print();
  }

  // ---- (b) reduce ------------------------------------------------------------
  {
    const std::vector<std::pair<std::string, CollArm>> arms = {
        {"YHCCL",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           coll::reduce(c, s, r, cnt(b), Datatype::f64, ReduceOp::sum, 0);
         }},
        {"RG",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::rg_reduce(c, s, r, cnt(b), Datatype::f64, ReduceOp::sum, 0);
         }},
        {"DPML",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::dpml_reduce(c, s, r, cnt(b), Datatype::f64, ReduceOp::sum,
                             0);
         }},
        {"XPMEM",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::xpmem_reduce(c, s, r, cnt(b), Datatype::f64, ReduceOp::sum,
                              0);
         }},
    };
    sweep(team, "(b) reduce (root 0, max over ranks)", arms, sizes, hi, hi,
          &session, "reduce")
        .print();
  }

  // ---- (c) all-reduce ----------------------------------------------------------
  {
    std::vector<std::pair<std::string, CollArm>> arms = {
        {"YHCCL",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           coll::allreduce(c, s, r, cnt(b), Datatype::f64, ReduceOp::sum);
         }},
        {"DPML",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::dpml_allreduce(c, s, r, cnt(b), Datatype::f64,
                                ReduceOp::sum);
         }},
        {"RG",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::rg_allreduce(c, s, r, cnt(b), Datatype::f64, ReduceOp::sum);
         }},
        {"OpenMPI",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::ring_allreduce(c, s, r, cnt(b), Datatype::f64,
                                ReduceOp::sum, base::Transport::two_copy);
         }},
        {"XPMEM",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::xpmem_allreduce(c, s, r, cnt(b), Datatype::f64,
                                 ReduceOp::sum);
         }},
    };
    if (pow2)
      arms.push_back(
          {"MPICH",
           [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
             base::rabenseifner_allreduce(c, s, r, cnt(b), Datatype::f64,
                                          ReduceOp::sum,
                                          base::Transport::two_copy);
           }});
    sweep(team, "(c) all-reduce", arms, sizes, hi, hi, &session,
          "allreduce")
        .print();
  }

  // ---- (d) broadcast ------------------------------------------------------------
  {
    const std::vector<std::pair<std::string, CollArm>> arms = {
        {"YHCCL",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           (void)s;
           coll::broadcast(c, r, cnt(b), Datatype::f64, 0);
         }},
        {"OpenMPI",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           (void)s;
           coll::CollOpts o;
           o.policy = copy::CopyPolicy::memmove_model;
           coll::pipelined_broadcast(c, r, cnt(b), Datatype::f64, 0, o);
         }},
        {"XPMEM",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           (void)s;
           base::xpmem_broadcast(c, r, cnt(b), Datatype::f64, 0);
         }},
    };
    sweep(team, "(d) broadcast (root 0, max over ranks)", arms, sizes, hi,
          hi, &session, "broadcast")
        .print();
  }

  // ---- (e) all-gather --------------------------------------------------------------
  {
    const auto ag_sizes = default_sizes(8u << 10, 2u << 20);
    const std::size_t ag_hi = ag_sizes.back();
    const std::vector<std::pair<std::string, CollArm>> arms = {
        {"YHCCL",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           coll::allgather(c, s, r, cnt(b), Datatype::f64);
         }},
        {"OpenMPI",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::ring_allgather(c, s, r, cnt(b), Datatype::f64,
                                base::Transport::two_copy);
         }},
        {"CMA-ring",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::ring_allgather(c, s, r, cnt(b), Datatype::f64,
                                base::Transport::single_copy);
         }},
        {"XPMEM",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::xpmem_allgather(c, s, r, cnt(b), Datatype::f64);
         }},
    };
    sweep(team, "(e) all-gather (per-rank message size)", arms, ag_sizes,
          ag_hi, ag_hi * static_cast<std::size_t>(p), &session, "allgather")
        .print();
  }
  session.write();
  return 0;
}
