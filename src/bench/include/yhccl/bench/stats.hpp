// Robust summary statistics for benchmark timing samples.
//
// The harness reports the median with a distribution-free confidence
// interval (order statistics of the sorted sample, binomial/normal
// approximation) and rejects outliers by distance from the median in MAD
// units — the STREAM-style methodology the paper's §5 campaign relies on:
// medians because collectives finish at the slowest rank and the tail is
// long, MAD because the standard deviation is itself corrupted by the very
// outliers we want to ignore.
#pragma once

#include <cstddef>
#include <vector>

namespace yhccl::bench {

/// Robust summary of one timing series.
struct Summary {
  std::size_t reps = 0;      ///< samples kept (after outlier rejection)
  std::size_t rejected = 0;  ///< samples dropped as outliers
  double median = 0;
  double mad = 0;   ///< median absolute deviation (raw, unscaled)
  double mean = 0;
  double min = 0;
  double max = 0;
  double ci_low = 0;   ///< ~95% CI for the median (order statistics)
  double ci_high = 0;

  /// Relative CI half-width, the repeat-until-converged criterion.
  double rel_ci() const noexcept {
    return median > 0 ? (ci_high - ci_low) / (2 * median) : 0;
  }
};

/// Median of `v` (averages the middle pair for even sizes); 0 when empty.
double median_of(std::vector<double> v);

/// Median absolute deviation around `center`; 0 when empty.
double mad_of(const std::vector<double>& v, double center);

/// Indices [lo, hi] into the *sorted* sample bounding a ~95% CI for the
/// median (normal approximation of the binomial order-statistic interval,
/// clamped; degenerates to [0, n-1] for tiny n).
void median_ci_ranks(std::size_t n, std::size_t& lo, std::size_t& hi);

/// Drop samples farther than `k` MADs from the median.  With MAD == 0
/// (constant sample) only exact mismatches are outliers.  Never rejects
/// more than half the sample: a bimodal run is data, not noise.
std::vector<double> reject_outliers(const std::vector<double>& v,
                                    double k = 5.0);

/// Full pipeline: outlier rejection, then median/MAD/mean/min/max/CI.
Summary summarize(const std::vector<double>& samples, double outlier_k = 5.0);

}  // namespace yhccl::bench
