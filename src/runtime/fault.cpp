#include "yhccl/runtime/fault.hpp"

#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "yhccl/common/time.hpp"
#include "yhccl/runtime/sync_timeout.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::rt {

namespace detail {
thread_local FaultCtx tl_fault;
}  // namespace detail

std::string describe_fault(const FaultInfo& f) {
  const std::string who =
      f.rank >= 0 ? "rank " + std::to_string(f.rank) : "an unknown rank";
  std::string what;
  switch (f.kind) {
    case FaultKind::peer_dead: what = who + " died"; break;
    case FaultKind::peer_diverged:
      what = who + " diverged (collective call sequence mismatch)";
      break;
    case FaultKind::timeout: what = who + " stalled past the watchdog"; break;
    case FaultKind::corruption:
      what = who + " detected shared-state corruption";
      break;
    case FaultKind::none: return "no fault";
  }
  return what + " (team epoch " + std::to_string(f.epoch) + ")";
}

// ---------------------------------------------------------------------------
// YHCCL_FAULT grammar
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const char* why) {
  raise("YHCCL_FAULT spec '" + spec + "': " + why +
        " (grammar: die|stall|corrupt@site[:rank=R][:iter=N][:ms=M]"
        "[:off=B][:once=1])");
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan p;
  const auto at = spec.find('@');
  if (at == std::string::npos) bad_spec(spec, "missing '@site'");
  const std::string action = spec.substr(0, at);
  if (action == "die")
    p.action = Action::die;
  else if (action == "stall")
    p.action = Action::stall;
  else if (action == "corrupt")
    p.action = Action::corrupt;
  else
    bad_spec(spec, "unknown action");

  std::size_t pos = at + 1;
  const auto site_end = spec.find(':', pos);
  p.site = spec.substr(pos, site_end == std::string::npos ? std::string::npos
                                                          : site_end - pos);
  if (p.site.empty()) bad_spec(spec, "empty site");

  pos = site_end;
  while (pos != std::string::npos) {
    ++pos;  // skip ':'
    const auto eq = spec.find('=', pos);
    if (eq == std::string::npos) bad_spec(spec, "option without '='");
    const std::string key = spec.substr(pos, eq - pos);
    const auto val_end = spec.find(':', eq + 1);
    const std::string val = spec.substr(
        eq + 1, val_end == std::string::npos ? std::string::npos
                                             : val_end - (eq + 1));
    char* end = nullptr;
    errno = 0;
    const double num = std::strtod(val.c_str(), &end);
    if (val.empty() || end == nullptr || *end != '\0' || errno != 0)
      bad_spec(spec, "option value is not a number");
    if (key == "rank")
      p.rank = static_cast<int>(num);
    else if (key == "iter")
      p.iter = static_cast<std::uint64_t>(num);
    else if (key == "ms")
      p.stall_ms = num;
    else if (key == "off")
      p.corrupt_off = static_cast<std::uint64_t>(num);
    else if (key == "once")
      p.once = num != 0;
    else
      bad_spec(spec, "unknown option key");
    pos = val_end;
  }
  return p;
}

FaultPlan FaultPlan::from_env() {
  const char* e = std::getenv("YHCCL_FAULT");
  if (e == nullptr || *e == '\0') return {};
  return parse(e);
}

// ---------------------------------------------------------------------------
// Context install / teardown
// ---------------------------------------------------------------------------

FaultRunScope::FaultRunScope(FaultState& st, const FaultPlan& plan, int rank,
                             int nranks, std::uint64_t epoch, bool forked,
                             const CorruptTarget* targets,
                             int ntargets) noexcept {
  auto& c = detail::tl_fault;
  c.st = &st;
  c.plan = plan.active() ? &plan : nullptr;
  c.rank = rank;
  c.nranks = nranks;
  c.epoch = epoch;
  c.forked = forked;
  c.hits = 0;
  c.targets = targets;
  c.ntargets = ntargets;
  auto& slot = st.hb[rank];
  slot.pid.store(getpid(), std::memory_order_relaxed);
  slot.epoch.store(epoch, std::memory_order_relaxed);
  slot.left.store(0, std::memory_order_release);
}

FaultRunScope::~FaultRunScope() {
  auto& c = detail::tl_fault;
  if (c.st != nullptr)
    c.st->hb[c.rank].left.store(1, std::memory_order_release);
  c = detail::FaultCtx{};
}

// ---------------------------------------------------------------------------
// Abort propagation + classification
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void throw_fault(const FaultInfo& f, const char* during) {
  // Flight-recorder breadcrumb: where this rank observed the abort.  Pushed
  // before unwinding so the harvested ring ends at the abort, not before it.
  trace::instant(trace::Phase::fault, FaultState::pack(f),
                 static_cast<std::uint8_t>(trace::site_from_string(during)));
  std::string msg = "collective aborted: " + describe_fault(f);
  if (during != nullptr) msg += std::string(" [detected during ") + during + "]";
  throw Error(msg, f.kind, f.rank, f.epoch);
}

/// Raise the team-wide abort: first CAS from 0 wins; a loser adopts the
/// winner's verdict so every survivor reports the identical fault.
[[noreturn]] void raise_abort(detail::FaultCtx& c, FaultInfo f,
                              const char* during) {
  std::uint64_t expect = 0;
  if (!c.st->abort_word.compare_exchange_strong(
          expect, FaultState::pack(f), std::memory_order_acq_rel,
          std::memory_order_acquire)) {
    const FaultInfo winner = FaultState::unpack(expect);
    if (winner.epoch == c.epoch) f = winner;
  }
  throw_fault(f, during);
}

bool pid_gone(int pid) noexcept {
  return pid > 0 && kill(pid, 0) == -1 && errno == ESRCH;
}

void sleep_ns(long ns) noexcept {
  timespec ts{0, ns};
  nanosleep(&ts, nullptr);
}

/// Classify a watchdog expiry against the shared liveness slots.
/// Deterministic preference order (lowest rank within each class):
///   1. a rank whose process is known dead (reap bookkeeping / pid probe),
///   2. a rank that left the SPMD function while peers still wait on it,
///   3. a live rank whose collective sequence differs from mine,
///   4. a live rank whose heartbeat is frozen over a short probe window,
///   5. otherwise: an unattributable timeout.
/// (2) can blame a legitimately-finished rank when the true fault lies
/// elsewhere — the classification is a best-effort diagnosis, and the CAS
/// in raise_abort keeps every survivor's report consistent regardless.
FaultInfo classify(detail::FaultCtx& c) {
  FaultInfo f;
  f.epoch = c.epoch;
  const auto* hb = c.st->hb;
  for (int r = 0; r < c.nranks; ++r) {
    if (r == c.rank) continue;
    if (hb[r].dead.load(std::memory_order_acquire) != 0 ||
        (c.forked && pid_gone(hb[r].pid.load(std::memory_order_relaxed)))) {
      f.kind = FaultKind::peer_dead;
      f.rank = r;
      return f;
    }
  }
  for (int r = 0; r < c.nranks; ++r) {
    if (r != c.rank && hb[r].left.load(std::memory_order_acquire) != 0) {
      f.kind = FaultKind::peer_dead;
      f.rank = r;
      return f;
    }
  }
  const std::uint64_t my_seq =
      hb[c.rank].seq.load(std::memory_order_relaxed);
  for (int r = 0; r < c.nranks; ++r) {
    if (r != c.rank &&
        hb[r].seq.load(std::memory_order_relaxed) != my_seq) {
      f.kind = FaultKind::peer_diverged;
      f.rank = r;
      return f;
    }
  }
  // Heartbeat probe: survivors spinning on the fault keep beating; a wedged
  // rank does not.
  std::uint64_t before[kMaxFaultRanks];
  for (int r = 0; r < c.nranks; ++r)
    before[r] = hb[r].beat.load(std::memory_order_relaxed);
  // Keep my own heartbeat alive across the probe: several survivors may
  // classify concurrently, and a classifier that stopped beating would be
  // mistaken for the frozen rank by its peers.
  for (int i = 0; i < 20; ++i) {
    sleep_ns(1'000'000);
    c.st->hb[c.rank].beat.fetch_add(1, std::memory_order_relaxed);
  }
  for (int r = 0; r < c.nranks; ++r) {
    if (r != c.rank &&
        hb[r].beat.load(std::memory_order_relaxed) == before[r]) {
      f.kind = FaultKind::timeout;
      f.rank = r;
      return f;
    }
  }
  f.kind = FaultKind::timeout;
  return f;
}

}  // namespace

void fault_poll_abort() {
  auto& c = detail::tl_fault;
  if (c.st == nullptr) return;
  const std::uint64_t w = c.st->abort_word.load(std::memory_order_acquire);
  if (w == 0) return;
  const FaultInfo f = FaultState::unpack(w);
  if (f.epoch != c.epoch) return;  // stale abort from an earlier team epoch
  throw_fault(f, nullptr);
}

void fault_check_dead() {
  auto& c = detail::tl_fault;
  if (c.st == nullptr) return;
  for (int r = 0; r < c.nranks; ++r) {
    if (r == c.rank) continue;
    if (c.st->hb[r].dead.load(std::memory_order_acquire) != 0)
      raise_abort(c, FaultInfo{FaultKind::peer_dead, r, c.epoch},
                  "liveness scan");
  }
}

[[noreturn]] void fault_timeout(const char* what) {
  auto& c = detail::tl_fault;
  if (c.st == nullptr)
    raise(std::string(what) +
          " exceeded the sync timeout — a peer rank is dead or the "
          "collective call sequence diverged");
  fault_poll_abort();  // someone may have classified while we slept
  raise_abort(c, classify(c), what);
}

[[noreturn]] void fault_raise_corruption(const char* what) {
  auto& c = detail::tl_fault;
  const std::string detail = std::string("integrity check failed: ") + what;
  if (c.st == nullptr) throw Error(detail, FaultKind::corruption, -1, 0);
  FaultInfo f{FaultKind::corruption, c.rank, c.epoch};
  std::uint64_t expect = 0;
  if (!c.st->abort_word.compare_exchange_strong(
          expect, FaultState::pack(f), std::memory_order_acq_rel,
          std::memory_order_acquire)) {
    const FaultInfo winner = FaultState::unpack(expect);
    if (winner.epoch == c.epoch) f = winner;
  }
  trace::instant(trace::Phase::fault, FaultState::pack(f), 0);
  throw Error("collective aborted: " + describe_fault(f) + " [" + detail + "]",
              f.kind, f.rank, f.epoch);
}

// ---------------------------------------------------------------------------
// Injection
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void inject_die(detail::FaultCtx& c, const char* site) {
  // The dying rank's own breadcrumb: its ring lives in the shared mapping,
  // so this record survives even the _exit below and lets the flight dump
  // name the injection site from the victim's side.
  trace::instant(trace::Phase::fault,
                 FaultState::pack({FaultKind::peer_dead, c.rank, c.epoch}),
                 static_cast<std::uint8_t>(trace::site_from_string(site)));
  if (c.forked) {
    // Brutal death, no unwinding — like a real crash.  Detection runs
    // entirely through the parent's reap bookkeeping / pid probes.
    _exit(kDieExitCode);
  }
  throw FaultInjectedDeath{c.rank, site};
}

void inject_corrupt(detail::FaultCtx& c) {
  for (int i = 0; i < c.ntargets; ++i) {
    const CorruptTarget& t = c.targets[i];
    if (t.name == nullptr || t.bytes == 0 || c.plan->site != t.name) continue;
    const std::size_t off =
        static_cast<std::size_t>(c.plan->corrupt_off) % t.bytes;
    t.base[off] ^= 0x5a;
    trace::instant(trace::Phase::fault,
                   FaultState::pack({FaultKind::corruption, c.rank, c.epoch}),
                   0);
    return;
  }
  // An unknown section is a spec error: surface it instead of silently
  // injecting nothing (the campaign would read that as a passing check).
  raise("YHCCL_FAULT corrupt@" + c.plan->site +
        ": unknown shared section (plans|fifo|arena)");
}

void inject_stall(detail::FaultCtx& c) {
  // Model a wedged rank: sleep without heartbeating.  Bounded stalls
  // (ms >= 0) resume and let the collective complete — a merely-slow rank;
  // unbounded stalls end when the team aborts (fault_poll_abort throws), or
  // after a safety cap of a few watchdog periods.
  const double t0 = wall_seconds();
  const double watchdog = sync_timeout();
  const double cap = c.plan->stall_ms >= 0
                         ? c.plan->stall_ms / 1e3
                         : (watchdog > 0 ? 4 * watchdog + 2.0 : 30.0);
  while (wall_seconds() - t0 < cap) {
    sleep_ns(1'000'000);  // 1 ms
    fault_poll_abort();
  }
}

}  // namespace

void fault_point(const char* site) {
  auto& c = detail::tl_fault;
  if (c.st == nullptr) return;
  c.st->hb[c.rank].beat.fetch_add(1, std::memory_order_relaxed);
  // Fence out ranks resumed after a recovery they did not participate in:
  // their writes must not tear the re-initialized state.
  if (c.st->team_epoch.load(std::memory_order_acquire) != c.epoch)
    throw_fault(FaultInfo{FaultKind::timeout, c.rank, c.epoch},
                "stale-epoch fence");
  fault_poll_abort();
  const FaultPlan* plan = c.plan;
  if (plan == nullptr) return;
  if (plan->rank >= 0 && plan->rank != c.rank) return;
  if (plan->action == FaultPlan::Action::corrupt) {
    // corrupt@<section> counts *every* fault point the matching rank
    // passes (its site names a shared section, not a call site).
    if (c.hits++ != plan->iter) return;
    if (plan->once &&
        c.st->inject_fired.fetch_add(1, std::memory_order_acq_rel) != 0)
      return;
    inject_corrupt(c);
    return;
  }
  if (plan->site != site) return;
  if (c.hits++ != plan->iter) return;
  if (plan->once &&
      c.st->inject_fired.fetch_add(1, std::memory_order_acq_rel) != 0)
    return;
  if (plan->action == FaultPlan::Action::die) inject_die(c, site);
  inject_stall(c);
}

}  // namespace yhccl::rt
