#include "yhccl/metrics/export.hpp"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "yhccl/common/error.hpp"

namespace yhccl::metrics {

namespace {

int coll_id_from_name(const std::string& s) noexcept {
  for (int i = 1; i < kCollSlots; ++i)
    if (s == coll_slot_name(i)) return i;
  return 0;
}

int alg_id_from_name(const std::string& s) noexcept {
  for (int i = 1; i < kAlgSlots; ++i)
    if (s == alg_slot_name(i)) return i;
  return 0;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const double lo =
        *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + lo) / 2;
  }
  return m;
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof buf - 1));
}

}  // namespace

// ---------------------------------------------------------------------------
// Snapshot capture
// ---------------------------------------------------------------------------

Snapshot Snapshot::capture(const MetricsBuffer& buf) {
  Snapshot s;
  s.pid = static_cast<int>(::getpid());
  s.nranks = buf.nranks();
  s.ticks_per_second = buf.ticks_per_second();
  s.t_origin = buf.t_origin();

  const TeamGauges& g = buf.team();
  const auto rd = [](const mc::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  s.team.runs = rd(g.runs);
  s.team.epoch = rd(g.epoch);
  s.team.active_ranks = rd(g.active_ranks);
  s.team.straggler_flags = rd(g.straggler_flags);
  s.team.rs_faults = rd(g.rs_faults);
  s.team.rs_retries = rd(g.rs_retries);
  s.team.rs_recoveries = rd(g.rs_recoveries);
  s.team.rs_degrades = rd(g.rs_degrades);
  s.team.rs_quarantines = rd(g.rs_quarantines);
  s.team.rs_corruptions = rd(g.rs_corruptions);
  s.team.rs_giveups = rd(g.rs_giveups);
  s.team.rs_heals = rd(g.rs_heals);
  s.team.plan_lookups = rd(g.plan_lookups);
  s.team.plan_hits = rd(g.plan_hits);
  s.team.plan_misses = rd(g.plan_misses);
  s.team.plan_inserts = rd(g.plan_inserts);
  s.team.plan_explores = rd(g.plan_explores);
  s.team.plan_commits = rd(g.plan_commits);
  s.team.plan_loaded = rd(g.plan_loaded);
  s.team.plan_entries = rd(g.plan_entries);
  s.team.plan_quarantines = rd(g.plan_quarantines);

  s.ranks.reserve(static_cast<std::size_t>(s.nranks));
  for (int r = 0; r < s.nranks; ++r) {
    const RankSlot& slot = buf.rank(r);
    RankSnap rs;
    rs.rank = r;
    rs.barriers = rd(slot.barriers);
    rs.flag_posts = rd(slot.flag_posts);
    rs.flag_waits = rd(slot.flag_waits);
    rs.barrier_wait_ticks = rd(slot.barrier_wait_ticks);
    for (int c = 0; c < kCollSlots; ++c)
      rs.plan_gauge[c] = rd(slot.plan_gauge[c]);
    rs.runs = rd(slot.runs);
    rs.wall_ns = rd(slot.wall_ns);
    rs.dav_loads = rd(slot.dav_loads);
    rs.dav_stores = rd(slot.dav_stores);

    // Window: acquire the counter, then read the published slots.  A live
    // writer may lap us on the oldest entries; torn entries are dropped by
    // the ordinal-grouping in detect_stragglers, not here.
    const std::uint64_t next =
        slot.window_next.load(std::memory_order_acquire);
    const std::uint64_t have =
        next < kWindowSlots ? next : static_cast<std::uint64_t>(kWindowSlots);
    for (std::uint64_t i = next - have; i < next; ++i) {
      const WindowEntry& w = slot.window[i & (kWindowSlots - 1)];
      WindowSnap ws;
      ws.ordinal = rd(w.ordinal);
      ws.arrive = rd(w.arrive);
      ws.depart = rd(w.depart);
      rs.window.push_back(ws);
    }

    for (int idx = 0; idx < kCellCount; ++idx) {
      const Cell& cell = slot.cells[idx];
      CellSnap cs;
      cs.calls = rd(cell.calls);
      cs.bytes = rd(cell.bytes);
      cs.ticks = rd(cell.ticks);
      std::uint64_t any = cs.calls | cs.bytes | cs.ticks;
      for (int b = 0; b < kLatBuckets; ++b) {
        cs.hist[b] = rd(cell.hist[b]);
        any |= cs.hist[b];
      }
      if (any == 0) continue;
      cs.size_bucket = idx % kSizeBuckets;
      cs.alg = (idx / kSizeBuckets) % kAlgSlots;
      cs.coll = idx / (kSizeBuckets * kAlgSlots);
      rs.cells.push_back(cs);
    }
    s.ranks.push_back(std::move(rs));
  }
  return s;
}

// ---------------------------------------------------------------------------
// yhccl-metrics/1 JSON
// ---------------------------------------------------------------------------

bench::Json Snapshot::to_json() const {
  bench::Json j = bench::Json::object();
  j.set("schema", kMetricsSchema);
  j.set("pid", static_cast<std::int64_t>(pid));
  j.set("nranks", static_cast<std::int64_t>(nranks));
  j.set("ticks_per_second", ticks_per_second);
  j.set("t_origin", t_origin);

  bench::Json t = bench::Json::object();
  t.set("runs", team.runs);
  t.set("epoch", team.epoch);
  t.set("active_ranks", team.active_ranks);
  t.set("straggler_flags", team.straggler_flags);
  bench::Json rs = bench::Json::object();
  rs.set("faults", team.rs_faults);
  rs.set("retries", team.rs_retries);
  rs.set("recoveries", team.rs_recoveries);
  rs.set("degrades", team.rs_degrades);
  rs.set("quarantines", team.rs_quarantines);
  rs.set("corruptions", team.rs_corruptions);
  rs.set("giveups", team.rs_giveups);
  rs.set("heals", team.rs_heals);
  t.set("resilience", std::move(rs));
  bench::Json pl = bench::Json::object();
  pl.set("lookups", team.plan_lookups);
  pl.set("hits", team.plan_hits);
  pl.set("misses", team.plan_misses);
  pl.set("inserts", team.plan_inserts);
  pl.set("explores", team.plan_explores);
  pl.set("commits", team.plan_commits);
  pl.set("loaded", team.plan_loaded);
  pl.set("entries", team.plan_entries);
  pl.set("quarantines", team.plan_quarantines);
  t.set("plans", std::move(pl));
  j.set("team", std::move(t));

  bench::Json arr = bench::Json::array();
  for (const RankSnap& r : ranks) {
    bench::Json o = bench::Json::object();
    o.set("rank", static_cast<std::int64_t>(r.rank));
    bench::Json sync = bench::Json::object();
    sync.set("barriers", r.barriers);
    sync.set("flag_posts", r.flag_posts);
    sync.set("flag_waits", r.flag_waits);
    o.set("sync", std::move(sync));
    o.set("barrier_wait_ticks", r.barrier_wait_ticks);
    o.set("runs", r.runs);
    o.set("wall_ns", r.wall_ns);
    bench::Json dav = bench::Json::object();
    dav.set("loads", r.dav_loads);
    dav.set("stores", r.dav_stores);
    o.set("dav", std::move(dav));

    bench::Json plans = bench::Json::array();
    for (int c = 1; c < kCollSlots; ++c) {
      const std::uint64_t gge = r.plan_gauge[c];
      if (!gauge_valid(gge)) continue;
      bench::Json p = bench::Json::object();
      p.set("coll", coll_slot_name(c));
      p.set("alg", alg_slot_name(gauge_alg(gge)));
      p.set("arm", static_cast<std::int64_t>(gauge_arm(gge)));
      p.set("source", static_cast<std::int64_t>(gauge_source(gge)));
      p.set("size_bucket", static_cast<std::int64_t>(gauge_bucket(gge)));
      plans.push_back(std::move(p));
    }
    o.set("plans", std::move(plans));

    bench::Json win = bench::Json::array();
    for (const WindowSnap& w : r.window) {
      bench::Json e = bench::Json::object();
      e.set("ordinal", w.ordinal);
      e.set("arrive", w.arrive);
      e.set("depart", w.depart);
      win.push_back(std::move(e));
    }
    o.set("window", std::move(win));

    bench::Json cells = bench::Json::array();
    for (const CellSnap& c : r.cells) {
      bench::Json e = bench::Json::object();
      e.set("coll", coll_slot_name(c.coll));
      e.set("alg", alg_slot_name(c.alg));
      e.set("size_bucket", static_cast<std::int64_t>(c.size_bucket));
      e.set("calls", c.calls);
      e.set("bytes", c.bytes);
      e.set("ticks", c.ticks);
      bench::Json h = bench::Json::array();
      for (int b = 0; b < kLatBuckets; ++b) h.push_back(c.hist[b]);
      e.set("hist", std::move(h));
      cells.push_back(std::move(e));
    }
    o.set("cells", std::move(cells));
    arr.push_back(std::move(o));
  }
  j.set("ranks", std::move(arr));

  bench::Json st = bench::Json::array();
  for (int r : stragglers) st.push_back(static_cast<std::int64_t>(r));
  j.set("stragglers", std::move(st));
  return j;
}

Snapshot Snapshot::from_json(const bench::Json& j) {
  YHCCL_REQUIRE(j.is_object() && j["schema"].as_string() == kMetricsSchema,
                "not a yhccl-metrics/1 document");
  Snapshot s;
  s.pid = static_cast<int>(j["pid"].as_int());
  s.nranks = static_cast<int>(j["nranks"].as_int());
  s.ticks_per_second = j["ticks_per_second"].as_double();
  s.t_origin = j["t_origin"].as_uint();

  const bench::Json& t = j["team"];
  s.team.runs = t["runs"].as_uint();
  s.team.epoch = t["epoch"].as_uint();
  s.team.active_ranks = t["active_ranks"].as_uint();
  s.team.straggler_flags = t["straggler_flags"].as_uint();
  const bench::Json& rsj = t["resilience"];
  s.team.rs_faults = rsj["faults"].as_uint();
  s.team.rs_retries = rsj["retries"].as_uint();
  s.team.rs_recoveries = rsj["recoveries"].as_uint();
  s.team.rs_degrades = rsj["degrades"].as_uint();
  s.team.rs_quarantines = rsj["quarantines"].as_uint();
  s.team.rs_corruptions = rsj["corruptions"].as_uint();
  s.team.rs_giveups = rsj["giveups"].as_uint();
  s.team.rs_heals = rsj["heals"].as_uint();
  const bench::Json& plj = t["plans"];
  s.team.plan_lookups = plj["lookups"].as_uint();
  s.team.plan_hits = plj["hits"].as_uint();
  s.team.plan_misses = plj["misses"].as_uint();
  s.team.plan_inserts = plj["inserts"].as_uint();
  s.team.plan_explores = plj["explores"].as_uint();
  s.team.plan_commits = plj["commits"].as_uint();
  s.team.plan_loaded = plj["loaded"].as_uint();
  s.team.plan_entries = plj["entries"].as_uint();
  s.team.plan_quarantines = plj["quarantines"].as_uint();

  for (const bench::Json& o : j["ranks"].items()) {
    RankSnap r;
    r.rank = static_cast<int>(o["rank"].as_int());
    r.barriers = o["sync"]["barriers"].as_uint();
    r.flag_posts = o["sync"]["flag_posts"].as_uint();
    r.flag_waits = o["sync"]["flag_waits"].as_uint();
    r.barrier_wait_ticks = o["barrier_wait_ticks"].as_uint();
    r.runs = o["runs"].as_uint();
    r.wall_ns = o["wall_ns"].as_uint();
    r.dav_loads = o["dav"]["loads"].as_uint();
    r.dav_stores = o["dav"]["stores"].as_uint();
    for (const bench::Json& p : o["plans"].items()) {
      const int c = coll_id_from_name(p["coll"].as_string());
      if (c <= 0) continue;
      r.plan_gauge[c] = plan_gauge_pack(
          alg_id_from_name(p["alg"].as_string()),
          static_cast<int>(p["arm"].as_int()),
          static_cast<int>(p["source"].as_int()),
          static_cast<int>(p["size_bucket"].as_int()));
    }
    for (const bench::Json& w : o["window"].items()) {
      WindowSnap ws;
      ws.ordinal = w["ordinal"].as_uint();
      ws.arrive = w["arrive"].as_uint();
      ws.depart = w["depart"].as_uint();
      r.window.push_back(ws);
    }
    for (const bench::Json& e : o["cells"].items()) {
      CellSnap c;
      c.coll = coll_id_from_name(e["coll"].as_string());
      c.alg = alg_id_from_name(e["alg"].as_string());
      c.size_bucket = static_cast<int>(e["size_bucket"].as_int());
      c.calls = e["calls"].as_uint();
      c.bytes = e["bytes"].as_uint();
      c.ticks = e["ticks"].as_uint();
      const bench::Json& h = e["hist"];
      for (int b = 0; b < kLatBuckets && b < static_cast<int>(h.size()); ++b)
        c.hist[b] = h.at(static_cast<std::size_t>(b)).as_uint();
      r.cells.push_back(c);
    }
    s.ranks.push_back(std::move(r));
  }
  for (const bench::Json& r : j["stragglers"].items())
    s.stragglers.push_back(static_cast<int>(r.as_int()));
  return s;
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

namespace {

void emit_meta(std::string& out, const char* name, const char* help,
               const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string Snapshot::prometheus() const {
  const double hz = ticks_per_second > 0 ? ticks_per_second : 1e9;
  std::string out;
  out.reserve(16384);

  emit_meta(out, "yhccl_sync_barriers_total", "Barrier arrivals per rank.",
            "counter");
  for (const RankSnap& r : ranks)
    appendf(out, "yhccl_sync_barriers_total{rank=\"%d\"} %llu\n", r.rank,
            static_cast<unsigned long long>(r.barriers));
  emit_meta(out, "yhccl_sync_flag_posts_total",
            "Progress-flag publishes per rank.", "counter");
  for (const RankSnap& r : ranks)
    appendf(out, "yhccl_sync_flag_posts_total{rank=\"%d\"} %llu\n", r.rank,
            static_cast<unsigned long long>(r.flag_posts));
  emit_meta(out, "yhccl_sync_flag_waits_total",
            "Progress-flag waits per rank.", "counter");
  for (const RankSnap& r : ranks)
    appendf(out, "yhccl_sync_flag_waits_total{rank=\"%d\"} %llu\n", r.rank,
            static_cast<unsigned long long>(r.flag_waits));
  emit_meta(out, "yhccl_barrier_wait_seconds_total",
            "Cumulative barrier arrive..depart time per rank.", "counter");
  for (const RankSnap& r : ranks)
    appendf(out, "yhccl_barrier_wait_seconds_total{rank=\"%d\"} %.9g\n",
            r.rank, static_cast<double>(r.barrier_wait_ticks) / hz);
  emit_meta(out, "yhccl_rank_runs_total", "Completed team runs per rank.",
            "counter");
  for (const RankSnap& r : ranks)
    appendf(out, "yhccl_rank_runs_total{rank=\"%d\"} %llu\n", r.rank,
            static_cast<unsigned long long>(r.runs));
  emit_meta(out, "yhccl_rank_busy_seconds_total",
            "Wall time inside the SPMD function per rank.", "counter");
  for (const RankSnap& r : ranks)
    appendf(out, "yhccl_rank_busy_seconds_total{rank=\"%d\"} %.9g\n", r.rank,
            static_cast<double>(r.wall_ns) / 1e9);
  emit_meta(out, "yhccl_dav_bytes_total",
            "Measured data-access volume per rank.", "counter");
  for (const RankSnap& r : ranks) {
    appendf(out, "yhccl_dav_bytes_total{rank=\"%d\",dir=\"load\"} %llu\n",
            r.rank, static_cast<unsigned long long>(r.dav_loads));
    appendf(out, "yhccl_dav_bytes_total{rank=\"%d\",dir=\"store\"} %llu\n",
            r.rank, static_cast<unsigned long long>(r.dav_stores));
  }

  emit_meta(out, "yhccl_coll_calls_total",
            "Collective calls by rank/collective/algorithm/size bucket.",
            "counter");
  for (const RankSnap& r : ranks)
    for (const CellSnap& c : r.cells)
      appendf(out,
              "yhccl_coll_calls_total{rank=\"%d\",coll=\"%s\",alg=\"%s\","
              "size_bucket=\"%d\"} %llu\n",
              r.rank, coll_slot_name(c.coll), alg_slot_name(c.alg),
              c.size_bucket, static_cast<unsigned long long>(c.calls));
  emit_meta(out, "yhccl_coll_payload_bytes_total",
            "Collective payload bytes by rank/collective/algorithm/size "
            "bucket.",
            "counter");
  for (const RankSnap& r : ranks)
    for (const CellSnap& c : r.cells)
      appendf(out,
              "yhccl_coll_payload_bytes_total{rank=\"%d\",coll=\"%s\","
              "alg=\"%s\",size_bucket=\"%d\"} %llu\n",
              r.rank, coll_slot_name(c.coll), alg_slot_name(c.alg),
              c.size_bucket, static_cast<unsigned long long>(c.bytes));

  // Latency histograms, aggregated per (coll, alg) across ranks and size
  // buckets so the cardinality stays Prometheus-friendly.  Bucket counts
  // come from the log2 histogram itself, so the series is self-consistent
  // (`_count` == the +Inf bucket) even on a torn live capture.
  struct Agg {
    std::uint64_t hist[kLatBuckets] = {};
    std::uint64_t ticks = 0;
  };
  std::map<std::pair<int, int>, Agg> aggs;
  for (const RankSnap& r : ranks)
    for (const CellSnap& c : r.cells) {
      Agg& a = aggs[{c.coll, c.alg}];
      for (int b = 0; b < kLatBuckets; ++b) a.hist[b] += c.hist[b];
      a.ticks += c.ticks;
    }
  emit_meta(out, "yhccl_coll_latency_seconds",
            "Collective call latency by collective/algorithm.", "histogram");
  for (const auto& [key, a] : aggs) {
    const char* coll = coll_slot_name(key.first);
    const char* alg = alg_slot_name(key.second);
    std::uint64_t cum = 0;
    for (int b = 0; b < kLatBuckets - 1; ++b) {
      cum += a.hist[b];
      appendf(out,
              "yhccl_coll_latency_seconds_bucket{coll=\"%s\",alg=\"%s\","
              "le=\"%.9g\"} %llu\n",
              coll, alg,
              static_cast<double>(bucket_limit(b, kLatBuckets)) / hz,
              static_cast<unsigned long long>(cum));
    }
    cum += a.hist[kLatBuckets - 1];
    appendf(out,
            "yhccl_coll_latency_seconds_bucket{coll=\"%s\",alg=\"%s\","
            "le=\"+Inf\"} %llu\n",
            coll, alg, static_cast<unsigned long long>(cum));
    appendf(out, "yhccl_coll_latency_seconds_sum{coll=\"%s\",alg=\"%s\"} %.9g\n",
            coll, alg, static_cast<double>(a.ticks) / hz);
    appendf(out,
            "yhccl_coll_latency_seconds_count{coll=\"%s\",alg=\"%s\"} %llu\n",
            coll, alg, static_cast<unsigned long long>(cum));
  }

  emit_meta(out, "yhccl_team_runs_total", "Completed Team::run calls.",
            "counter");
  appendf(out, "yhccl_team_runs_total %llu\n",
          static_cast<unsigned long long>(team.runs));
  emit_meta(out, "yhccl_team_epoch", "Current team epoch.", "gauge");
  appendf(out, "yhccl_team_epoch %llu\n",
          static_cast<unsigned long long>(team.epoch));
  emit_meta(out, "yhccl_team_active_ranks", "Ranks in the current membership.",
            "gauge");
  appendf(out, "yhccl_team_active_ranks %llu\n",
          static_cast<unsigned long long>(team.active_ranks));
  emit_meta(out, "yhccl_team_straggler_flags_total",
            "Straggler detector firings.", "counter");
  appendf(out, "yhccl_team_straggler_flags_total %llu\n",
          static_cast<unsigned long long>(team.straggler_flags));

  emit_meta(out, "yhccl_resilience_events_total",
            "Resilient-execution engine events.", "counter");
  const std::pair<const char*, std::uint64_t> rs_events[] = {
      {"faults", team.rs_faults},         {"retries", team.rs_retries},
      {"recoveries", team.rs_recoveries}, {"degrades", team.rs_degrades},
      {"quarantines", team.rs_quarantines},
      {"corruptions", team.rs_corruptions},
      {"giveups", team.rs_giveups},       {"heals", team.rs_heals},
  };
  for (const auto& [name, v] : rs_events)
    appendf(out, "yhccl_resilience_events_total{event=\"%s\"} %llu\n", name,
            static_cast<unsigned long long>(v));

  emit_meta(out, "yhccl_plan_events_total", "Plan registry events.",
            "counter");
  const std::pair<const char*, std::uint64_t> plan_events[] = {
      {"lookups", team.plan_lookups},   {"hits", team.plan_hits},
      {"misses", team.plan_misses},     {"inserts", team.plan_inserts},
      {"explores", team.plan_explores}, {"commits", team.plan_commits},
      {"quarantines", team.plan_quarantines},
  };
  for (const auto& [name, v] : plan_events)
    appendf(out, "yhccl_plan_events_total{event=\"%s\"} %llu\n", name,
            static_cast<unsigned long long>(v));
  emit_meta(out, "yhccl_plan_entries", "Live plan registry entries.", "gauge");
  appendf(out, "yhccl_plan_entries %llu\n",
          static_cast<unsigned long long>(team.plan_entries));
  emit_meta(out, "yhccl_plan_loaded", "Plans loaded from the cache file.",
            "gauge");
  appendf(out, "yhccl_plan_loaded %llu\n",
          static_cast<unsigned long long>(team.plan_loaded));

  if (!stragglers.empty()) {
    emit_meta(out, "yhccl_straggler_flagged",
              "Ranks currently flagged by the straggler detector.", "gauge");
    for (int r : stragglers)
      appendf(out, "yhccl_straggler_flagged{rank=\"%d\"} 1\n", r);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Merge (multi-process artifact)
// ---------------------------------------------------------------------------

void Snapshot::merge(const Snapshot& o) {
  pid = 0;  // a merged document no longer belongs to one process
  if (o.nranks > nranks) nranks = o.nranks;
  if (ticks_per_second <= 0) ticks_per_second = o.ticks_per_second;
  ranks.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) ranks[static_cast<std::size_t>(r)].rank = r;

  team.runs += o.team.runs;
  team.straggler_flags += o.team.straggler_flags;
  team.epoch = std::max(team.epoch, o.team.epoch);
  team.active_ranks = std::max(team.active_ranks, o.team.active_ranks);
  team.rs_faults += o.team.rs_faults;
  team.rs_retries += o.team.rs_retries;
  team.rs_recoveries += o.team.rs_recoveries;
  team.rs_degrades += o.team.rs_degrades;
  team.rs_quarantines += o.team.rs_quarantines;
  team.rs_corruptions += o.team.rs_corruptions;
  team.rs_giveups += o.team.rs_giveups;
  team.rs_heals += o.team.rs_heals;
  team.plan_lookups += o.team.plan_lookups;
  team.plan_hits += o.team.plan_hits;
  team.plan_misses += o.team.plan_misses;
  team.plan_inserts += o.team.plan_inserts;
  team.plan_explores += o.team.plan_explores;
  team.plan_commits += o.team.plan_commits;
  team.plan_quarantines += o.team.plan_quarantines;
  team.plan_loaded = std::max(team.plan_loaded, o.team.plan_loaded);
  team.plan_entries = std::max(team.plan_entries, o.team.plan_entries);

  for (const RankSnap& orr : o.ranks) {
    if (orr.rank < 0 || orr.rank >= nranks) continue;
    RankSnap& r = ranks[static_cast<std::size_t>(orr.rank)];
    r.barriers += orr.barriers;
    r.flag_posts += orr.flag_posts;
    r.flag_waits += orr.flag_waits;
    r.barrier_wait_ticks += orr.barrier_wait_ticks;
    r.runs += orr.runs;
    r.wall_ns += orr.wall_ns;
    r.dav_loads += orr.dav_loads;
    r.dav_stores += orr.dav_stores;
    for (int c = 0; c < kCollSlots; ++c)
      if (gauge_valid(orr.plan_gauge[c])) r.plan_gauge[c] = orr.plan_gauge[c];
    for (const CellSnap& oc : orr.cells) {
      CellSnap* dst = nullptr;
      for (CellSnap& c : r.cells)
        if (c.coll == oc.coll && c.alg == oc.alg &&
            c.size_bucket == oc.size_bucket) {
          dst = &c;
          break;
        }
      if (dst == nullptr) {
        CellSnap fresh;
        fresh.coll = oc.coll;
        fresh.alg = oc.alg;
        fresh.size_bucket = oc.size_bucket;
        r.cells.push_back(fresh);
        dst = &r.cells.back();
      }
      dst->calls += oc.calls;
      dst->bytes += oc.bytes;
      dst->ticks += oc.ticks;
      for (int b = 0; b < kLatBuckets; ++b) dst->hist[b] += oc.hist[b];
    }
  }
  for (RankSnap& r : ranks) r.window.clear();
  stragglers.clear();
}

// ---------------------------------------------------------------------------
// Validators
// ---------------------------------------------------------------------------

namespace {

bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

bool check_uint_members(const bench::Json& o, const char* const* keys,
                        std::size_t n, const char* where, std::string* err) {
  if (!o.is_object()) return fail(err, std::string(where) + ": not an object");
  for (std::size_t i = 0; i < n; ++i) {
    const bench::Json* v = o.find(keys[i]);
    if (v == nullptr || !v->is_integer() || v->as_int() < 0)
      return fail(err, std::string(where) + "." + keys[i] +
                           ": missing or not a non-negative integer");
  }
  return true;
}

}  // namespace

bool validate_metrics_json(const bench::Json& j, std::string* err) {
  if (!j.is_object()) return fail(err, "document is not an object");
  if (j["schema"].as_string() != kMetricsSchema)
    return fail(err, "schema is not '" + std::string(kMetricsSchema) + "'");
  if (!j["pid"].is_integer() || j["pid"].as_int() < 0)
    return fail(err, "pid: missing or negative");
  if (!j["nranks"].is_integer() || j["nranks"].as_int() < 1)
    return fail(err, "nranks: missing or < 1");
  if (!j["ticks_per_second"].is_number() ||
      j["ticks_per_second"].as_double() <= 0)
    return fail(err, "ticks_per_second: missing or <= 0");

  static const char* const team_keys[] = {"runs", "epoch", "active_ranks",
                                          "straggler_flags"};
  static const char* const rs_keys[] = {
      "faults",      "retries",     "recoveries", "degrades",
      "quarantines", "corruptions", "giveups",    "heals"};
  static const char* const plan_keys[] = {
      "lookups", "hits",   "misses",  "inserts",    "explores",
      "commits", "loaded", "entries", "quarantines"};
  if (!check_uint_members(j["team"], team_keys, std::size(team_keys), "team",
                          err) ||
      !check_uint_members(j["team"]["resilience"], rs_keys,
                          std::size(rs_keys), "team.resilience", err) ||
      !check_uint_members(j["team"]["plans"], plan_keys,
                          std::size(plan_keys), "team.plans", err))
    return false;

  const bench::Json& ranks = j["ranks"];
  if (!ranks.is_array()) return fail(err, "ranks: missing or not an array");
  const int nranks = static_cast<int>(j["nranks"].as_int());
  if (static_cast<int>(ranks.size()) != nranks)
    return fail(err, "ranks: length != nranks");
  static const char* const sync_keys[] = {"barriers", "flag_posts",
                                          "flag_waits"};
  static const char* const rank_keys[] = {"barrier_wait_ticks", "runs",
                                          "wall_ns"};
  static const char* const cell_keys[] = {"calls", "bytes", "ticks"};
  static const char* const dav_keys[] = {"loads", "stores"};
  static const char* const win_keys[] = {"ordinal", "arrive", "depart"};
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const bench::Json& r = ranks.at(i);
    const std::string where = "ranks[" + std::to_string(i) + "]";
    if (!r.is_object()) return fail(err, where + ": not an object");
    if (!r["rank"].is_integer() || r["rank"].as_int() < 0 ||
        r["rank"].as_int() >= nranks)
      return fail(err, where + ".rank: out of [0, nranks)");
    if (!check_uint_members(r["sync"], sync_keys, std::size(sync_keys),
                            (where + ".sync").c_str(), err) ||
        !check_uint_members(r, rank_keys, std::size(rank_keys),
                            where.c_str(), err) ||
        !check_uint_members(r["dav"], dav_keys, std::size(dav_keys),
                            (where + ".dav").c_str(), err))
      return false;
    const bench::Json* cells = r.find("cells");
    if (cells == nullptr || !cells->is_array())
      return fail(err, where + ".cells: missing or not an array");
    for (std::size_t k = 0; k < cells->size(); ++k) {
      const bench::Json& c = cells->at(k);
      const std::string cw = where + ".cells[" + std::to_string(k) + "]";
      if (coll_id_from_name(c["coll"].as_string()) <= 0)
        return fail(err, cw + ".coll: unknown collective name");
      if (c["alg"].as_string() != "?" &&
          alg_id_from_name(c["alg"].as_string()) <= 0)
        return fail(err, cw + ".alg: unknown algorithm name");
      if (!c["size_bucket"].is_integer() || c["size_bucket"].as_int() < 0 ||
          c["size_bucket"].as_int() >= kSizeBuckets)
        return fail(err, cw + ".size_bucket: out of range");
      if (!check_uint_members(c, cell_keys, std::size(cell_keys), cw.c_str(),
                              err))
        return false;
      const bench::Json* h = c.find("hist");
      if (h == nullptr || !h->is_array() ||
          static_cast<int>(h->size()) != kLatBuckets)
        return fail(err, cw + ".hist: not an array of kLatBuckets integers");
      for (const bench::Json& b : h->items())
        if (!b.is_integer() || b.as_int() < 0)
          return fail(err, cw + ".hist: negative or non-integer bucket");
    }
    const bench::Json* win = r.find("window");
    if (win == nullptr || !win->is_array())
      return fail(err, where + ".window: missing or not an array");
    if (static_cast<int>(win->size()) > kWindowSlots)
      return fail(err, where + ".window: longer than kWindowSlots");
    for (std::size_t k = 0; k < win->size(); ++k)
      if (!check_uint_members(win->at(k), win_keys, std::size(win_keys),
                              (where + ".window").c_str(), err))
        return false;
  }

  const bench::Json& st = j["stragglers"];
  if (!st.is_array()) return fail(err, "stragglers: missing or not an array");
  for (const bench::Json& r : st.items())
    if (!r.is_integer() || r.as_int() < 0 || r.as_int() >= nranks)
      return fail(err, "stragglers: rank out of range");
  return true;
}

bool validate_prometheus(const std::string& text, std::string* err) {
  std::map<std::string, std::string> types;  // metric family -> type
  // histogram bucket series key -> (cumulative values in order, saw +Inf,
  // +Inf value); count series key -> value.
  struct HistSeries {
    std::vector<double> cum;
    bool inf = false;
    double inf_value = 0;
  };
  std::map<std::string, HistSeries> hists;
  std::map<std::string, double> counts;

  std::size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    const std::string at = " (line " + std::to_string(lineno) + ")";
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type"
      if (line.rfind("# HELP ", 0) == 0) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string::npos || sp == 0)
          return fail(err, "malformed TYPE line" + at);
        const std::string name = rest.substr(0, sp);
        const std::string type = rest.substr(sp + 1);
        if (type != "counter" && type != "gauge" && type != "histogram")
          return fail(err, "unknown metric type '" + type + "'" + at);
        types[name] = type;
        continue;
      }
      return fail(err, "unknown comment directive" + at);
    }
    // Sample: name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos || name_end == 0)
      return fail(err, "malformed sample line" + at);
    const std::string name = line.substr(0, name_end);
    std::string labels;
    std::size_t value_at = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos)
        return fail(err, "unterminated label set" + at);
      labels = line.substr(name_end + 1, close - name_end - 1);
      value_at = close + 1;
    }
    while (value_at < line.size() && line[value_at] == ' ') ++value_at;
    if (value_at >= line.size())
      return fail(err, "sample has no value" + at);
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + value_at, &end);
    if (end == nullptr || *end != '\0')
      return fail(err, "sample value is not a number" + at);

    // Resolve the declared family: exact, or histogram suffixes.
    std::string family = name;
    std::string suffix;
    auto it = types.find(family);
    if (it == types.end()) {
      for (const char* s : {"_bucket", "_sum", "_count"}) {
        const std::size_t n = std::strlen(s);
        if (family.size() > n &&
            family.compare(family.size() - n, n, s) == 0) {
          const std::string base = family.substr(0, family.size() - n);
          auto bit = types.find(base);
          if (bit != types.end() && bit->second == "histogram") {
            it = bit;
            family = base;
            suffix = s;
            break;
          }
        }
      }
    }
    if (it == types.end())
      return fail(err, "sample for undeclared metric '" + name + "'" + at);
    if (it->second == "histogram" && suffix.empty())
      return fail(err, "bare sample for histogram family '" + family + "'" +
                           at);
    if (it->second != "histogram" && !suffix.empty())
      return fail(err,
                  "histogram suffix on non-histogram '" + family + "'" + at);
    if (value < 0 && it->second != "gauge")
      return fail(err, "negative counter sample" + at);

    if (suffix == "_bucket") {
      // Strip le from the label set to key the series.
      std::string le;
      std::string rest_labels;
      std::size_t p = 0;
      while (p < labels.size()) {
        std::size_t comma = labels.find(',', p);
        if (comma == std::string::npos) comma = labels.size();
        const std::string item = labels.substr(p, comma - p);
        if (item.rfind("le=", 0) == 0)
          le = item.substr(3);
        else {
          if (!rest_labels.empty()) rest_labels += ',';
          rest_labels += item;
        }
        p = comma + 1;
      }
      if (le.size() < 2 || le.front() != '"' || le.back() != '"')
        return fail(err, "histogram bucket without le label" + at);
      le = le.substr(1, le.size() - 2);
      HistSeries& h = hists[family + "{" + rest_labels + "}"];
      if (le == "+Inf") {
        h.inf = true;
        h.inf_value = value;
      }
      if (!h.cum.empty() && value + 1e-9 < h.cum.back())
        return fail(err, "histogram '" + family + "{" + rest_labels +
                             "}' is not cumulative" + at);
      h.cum.push_back(value);
    } else if (suffix == "_count") {
      counts[family + "{" + labels + "}"] = value;
    }
  }

  for (const auto& [key, h] : hists) {
    if (!h.inf)
      return fail(err, "histogram series " + key + " has no +Inf bucket");
    auto cit = counts.find(key);
    if (cit != counts.end() && cit->second != h.inf_value)
      return fail(err, "histogram series " + key + " count != +Inf bucket");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Straggler detection
// ---------------------------------------------------------------------------

StragglerReport detect_stragglers(const Snapshot& s, double k,
                                  double min_seconds) {
  StragglerReport rep;
  std::vector<const RankSnap*> with_window;
  for (const RankSnap& r : s.ranks)
    if (!r.window.empty()) with_window.push_back(&r);
  if (with_window.size() < 2) return rep;

  // Group arrivals by barrier ordinal; only ordinals stamped by every
  // window-bearing rank are team-comparable (membership shrink and window
  // wraparound naturally fall out of this filter).
  std::map<std::uint64_t, std::vector<std::pair<int, std::uint64_t>>> by_ord;
  for (const RankSnap* r : with_window)
    for (const WindowSnap& w : r->window)
      by_ord[w.ordinal].emplace_back(r->rank, w.arrive);

  std::map<int, std::pair<double, int>> dev;  // rank -> (sum dev ticks, n)
  for (const auto& [ord, arrivals] : by_ord) {
    if (arrivals.size() != with_window.size()) continue;
    std::vector<double> ts;
    ts.reserve(arrivals.size());
    for (const auto& [rank, t] : arrivals)
      ts.push_back(static_cast<double>(t));
    const double med = median_of(ts);
    for (const auto& [rank, t] : arrivals) {
      auto& d = dev[rank];
      d.first += static_cast<double>(t) - med;
      d.second += 1;
    }
    ++rep.ordinals;
  }
  if (rep.ordinals < 4) return rep;  // not enough full-team evidence

  const double hz = s.ticks_per_second > 0 ? s.ticks_per_second : 1e9;
  std::vector<double> per_rank;
  for (const auto& [rank, d] : dev)
    per_rank.push_back(d.first / d.second / hz);
  const double med = median_of(per_rank);
  std::vector<double> ad;
  for (double d : per_rank) ad.push_back(d > med ? d - med : med - d);
  const double mad = median_of(ad);
  const double threshold = std::max(k * mad, min_seconds);

  for (const auto& [rank, d] : dev) {
    StragglerReport::RankVerdict v;
    v.rank = rank;
    v.mean_dev_seconds = d.first / d.second / hz;
    v.flagged = v.mean_dev_seconds - med > threshold;
    if (v.flagged) rep.flagged.push_back(rank);
    rep.ranks.push_back(v);
  }
  return rep;
}

// ---------------------------------------------------------------------------
// yhccl_top renderer
// ---------------------------------------------------------------------------

namespace {

const char* ansi(bool color, const char* code) {
  return color ? code : "";
}

/// Approximate quantile from a log2 histogram: the upper edge of the
/// bucket where the cumulative count crosses q.
double hist_quantile(const std::uint64_t* hist, std::uint64_t total, double q,
                     double hz) {
  if (total == 0) return 0;
  const double want = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (int b = 0; b < kLatBuckets; ++b) {
    cum += hist[b];
    if (static_cast<double>(cum) >= want)
      return static_cast<double>(bucket_limit(b, kLatBuckets)) / hz;
  }
  return static_cast<double>(bucket_limit(kLatBuckets - 1, kLatBuckets)) / hz;
}

std::string human_bytes(double b) {
  char buf[32];
  const char* unit = "B";
  if (b >= 1e9) {
    b /= 1e9;
    unit = "GB";
  } else if (b >= 1e6) {
    b /= 1e6;
    unit = "MB";
  } else if (b >= 1e3) {
    b /= 1e3;
    unit = "KB";
  }
  std::snprintf(buf, sizeof buf, "%.1f %s", b, unit);
  return buf;
}

}  // namespace

std::string render_top(const Snapshot& snap, const Snapshot* prev,
                       bool color) {
  const double hz = snap.ticks_per_second > 0 ? snap.ticks_per_second : 1e9;
  const char* bold = ansi(color, "\x1b[1m");
  const char* dim = ansi(color, "\x1b[2m");
  const char* red = ansi(color, "\x1b[31m");
  const char* reset = ansi(color, "\x1b[0m");
  std::string out;
  out.reserve(8192);

  appendf(out, "%syhccl_top%s — pid %d · %d ranks · epoch %llu · runs %llu",
          bold, reset, snap.pid, snap.nranks,
          static_cast<unsigned long long>(snap.team.epoch),
          static_cast<unsigned long long>(snap.team.runs));
  if (prev != nullptr && snap.team.runs >= prev->team.runs)
    appendf(out, " (%s+%llu%s)", dim,
            static_cast<unsigned long long>(snap.team.runs - prev->team.runs),
            reset);
  if (snap.team.straggler_flags > 0)
    appendf(out, " · %sstraggler flags %llu%s", red,
            static_cast<unsigned long long>(snap.team.straggler_flags),
            reset);
  out += '\n';

  appendf(out,
          "%sresilience%s  faults %llu  retries %llu  recoveries %llu  "
          "degrades %llu  quarantines %llu  giveups %llu\n",
          dim, reset, static_cast<unsigned long long>(snap.team.rs_faults),
          static_cast<unsigned long long>(snap.team.rs_retries),
          static_cast<unsigned long long>(snap.team.rs_recoveries),
          static_cast<unsigned long long>(snap.team.rs_degrades),
          static_cast<unsigned long long>(snap.team.rs_quarantines),
          static_cast<unsigned long long>(snap.team.rs_giveups));
  const std::uint64_t looked = snap.team.plan_lookups;
  appendf(out,
          "%splans%s       lookups %llu  hits %llu (%.0f%%)  explores %llu  "
          "commits %llu  entries %llu  quarantines %llu\n",
          dim, reset, static_cast<unsigned long long>(looked),
          static_cast<unsigned long long>(snap.team.plan_hits),
          looked > 0 ? 100.0 * static_cast<double>(snap.team.plan_hits) /
                           static_cast<double>(looked)
                     : 0.0,
          static_cast<unsigned long long>(snap.team.plan_explores),
          static_cast<unsigned long long>(snap.team.plan_commits),
          static_cast<unsigned long long>(snap.team.plan_entries),
          static_cast<unsigned long long>(snap.team.plan_quarantines));

  const StragglerReport srep = detect_stragglers(snap);
  appendf(out,
          "%s rank     runs    busy(s)    wait(s)  wait%%  barriers     "
          "posts     waits  skew(us)  plan%s\n",
          bold, reset);
  for (const RankSnap& r : snap.ranks) {
    const double busy = static_cast<double>(r.wall_ns) / 1e9;
    const double wait = static_cast<double>(r.barrier_wait_ticks) / hz;
    double skew_us = 0;
    bool flagged = false;
    for (const auto& v : srep.ranks)
      if (v.rank == r.rank) {
        skew_us = v.mean_dev_seconds * 1e6;
        flagged = v.flagged;
      }
    for (int x : snap.stragglers)
      if (x == r.rank) flagged = true;
    std::string plan = "-";
    for (int c = kCollSlots - 1; c >= 1; --c)
      if (gauge_valid(r.plan_gauge[c])) {
        plan = std::string(coll_slot_name(c)) + ":" +
               alg_slot_name(gauge_alg(r.plan_gauge[c])) + "#" +
               std::to_string(gauge_arm(r.plan_gauge[c]));
        break;
      }
    appendf(out,
            "%s%5d  %7llu  %9.3f  %9.3f  %4.0f%%  %8llu  %8llu  %8llu  "
            "%8.1f  %-24s%s%s\n",
            flagged ? red : "", r.rank,
            static_cast<unsigned long long>(r.runs), busy, wait,
            busy > 0 ? 100.0 * wait / busy : 0.0,
            static_cast<unsigned long long>(r.barriers),
            static_cast<unsigned long long>(r.flag_posts),
            static_cast<unsigned long long>(r.flag_waits), skew_us,
            plan.c_str(), flagged ? "  ← STRAGGLER" : "",
            flagged ? reset : "");
  }

  // Per-(coll, alg) latency summary, aggregated across ranks/size buckets.
  struct Agg {
    std::uint64_t hist[kLatBuckets] = {};
    std::uint64_t calls = 0, bytes = 0;
  };
  std::map<std::pair<int, int>, Agg> aggs;
  for (const RankSnap& r : snap.ranks)
    for (const CellSnap& c : r.cells) {
      Agg& a = aggs[{c.coll, c.alg}];
      for (int b = 0; b < kLatBuckets; ++b) a.hist[b] += c.hist[b];
      a.calls += c.calls;
      a.bytes += c.bytes;
    }
  if (!aggs.empty())
    appendf(out, "%s coll/alg                        calls    payload   "
                 "p50        p90        p99%s\n",
            bold, reset);
  for (const auto& [key, a] : aggs) {
    std::uint64_t total = 0;
    for (int b = 0; b < kLatBuckets; ++b) total += a.hist[b];
    const std::string name = std::string(coll_slot_name(key.first)) + "/" +
                             alg_slot_name(key.second);
    appendf(out, " %-28s  %7llu  %9s  %8.1fus %8.1fus %8.1fus\n",
            name.c_str(), static_cast<unsigned long long>(a.calls),
            human_bytes(static_cast<double>(a.bytes)).c_str(),
            hist_quantile(a.hist, total, 0.50, hz) * 1e6,
            hist_quantile(a.hist, total, 0.90, hz) * 1e6,
            hist_quantile(a.hist, total, 0.99, hz) * 1e6);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Live shm mirror (seqlock)
// ---------------------------------------------------------------------------

std::string mirror_shm_name(int pid) {
  return "/yhccl-metrics-" + std::to_string(pid);
}

bool mirror_publish(void* mem, std::size_t cap,
                    const std::string& text) noexcept {
  if (mem == nullptr || cap < sizeof(MirrorHeader)) return false;
  if (text.size() > cap - sizeof(MirrorHeader)) return false;
  auto* h = static_cast<MirrorHeader*>(mem);
  char* payload = reinterpret_cast<char*>(h + 1);
  const std::uint64_t s0 = h->seq.load(std::memory_order_relaxed);
  // Single-writer seqlock.  The odd mark before the payload memcpy relies
  // on x86 store ordering (the same TSO assumption trace_now()'s rdtsc
  // already bakes in); the final release store publishes everything.
  h->seq.store(s0 + 1, std::memory_order_relaxed);
  mc::fence(std::memory_order_release);
  std::memcpy(payload, text.data(), text.size());
  h->bytes.store(text.size(), std::memory_order_relaxed);
  h->seq.store(s0 + 2, std::memory_order_release);
  return true;
}

bool mirror_read(const void* mem, std::size_t cap, std::string& out) {
  if (mem == nullptr || cap < sizeof(MirrorHeader)) return false;
  const auto* h = static_cast<const MirrorHeader*>(mem);
  const char* payload = reinterpret_cast<const char*>(h + 1);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t s1 = h->seq.load(std::memory_order_acquire);
    if (s1 == 0) return false;  // never published
    if ((s1 & 1) == 0) {
      const std::uint64_t n = h->bytes.load(std::memory_order_relaxed);
      if (n > cap - sizeof(MirrorHeader)) return false;
      out.assign(payload, n);
      mc::fence(std::memory_order_acquire);
      if (h->seq.load(std::memory_order_relaxed) == s1) return true;
    }
    timespec ts{0, 500'000};  // 0.5 ms between retries
    nanosleep(&ts, nullptr);
  }
  return false;
}

}  // namespace yhccl::metrics
