file(REMOVE_RECURSE
  "CMakeFiles/yhccl_baselines.dir/binomial.cpp.o"
  "CMakeFiles/yhccl_baselines.dir/binomial.cpp.o.d"
  "CMakeFiles/yhccl_baselines.dir/dpml.cpp.o"
  "CMakeFiles/yhccl_baselines.dir/dpml.cpp.o.d"
  "CMakeFiles/yhccl_baselines.dir/rabenseifner.cpp.o"
  "CMakeFiles/yhccl_baselines.dir/rabenseifner.cpp.o.d"
  "CMakeFiles/yhccl_baselines.dir/rg_tree.cpp.o"
  "CMakeFiles/yhccl_baselines.dir/rg_tree.cpp.o.d"
  "CMakeFiles/yhccl_baselines.dir/ring.cpp.o"
  "CMakeFiles/yhccl_baselines.dir/ring.cpp.o.d"
  "CMakeFiles/yhccl_baselines.dir/xpmem_direct.cpp.o"
  "CMakeFiles/yhccl_baselines.dir/xpmem_direct.cpp.o.d"
  "libyhccl_baselines.a"
  "libyhccl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yhccl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
