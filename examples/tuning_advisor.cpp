// Example: the analytical models as a tuning advisor.  Given a node
// description (ranks, sockets, cache hierarchy, memory bandwidth), prints
// the Tables 1-3 DAV comparison, the predicted per-collective times, the
// §5.4 non-temporal switch point, and the recommended algorithm per
// message size — i.e. everything YHCCL's runtime switching decides,
// exposed for humans.
//
//   $ ./examples/tuning_advisor [ranks] [sockets] [node_a|node_b|cluster_c|detect]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "yhccl/coll/coll.hpp"
#include "yhccl/copy/cache_model.hpp"
#include "yhccl/model/dav_model.hpp"

using namespace yhccl;
namespace md = yhccl::model;

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 64;
  const int m = argc > 2 ? std::atoi(argv[2]) : 2;
  copy::CacheConfig cache = copy::CacheConfig::node_a();
  const char* preset = argc > 3 ? argv[3] : "node_a";
  if (std::strcmp(preset, "node_b") == 0) cache = copy::CacheConfig::node_b();
  else if (std::strcmp(preset, "cluster_c") == 0)
    cache = copy::CacheConfig::cluster_c();
  else if (std::strcmp(preset, "detect") == 0)
    cache = copy::CacheConfig::detect();

  const double dab = 200e9;  // assumed node copy bandwidth
  std::printf("node: p=%d ranks, m=%d sockets, cache %s\n", p, m,
              cache.describe().c_str());
  std::printf("available cache C = c' + p*c'' = %.1f MB\n\n",
              cache.available(p) / 1e6);

  std::printf("all-reduce DAV (bytes moved per message byte):\n");
  std::printf("  %-24s %6.1f\n", "YHCCL socket-aware MA",
              1.0 * md::paper::socket_ma_allreduce(1, p, m));
  std::printf("  %-24s %6.1f\n", "YHCCL flat MA",
              1.0 * md::paper::ma_allreduce(1, p));
  std::printf("  %-24s %6.1f\n", "DPML",
              1.0 * md::paper::dpml_allreduce(1, p));
  std::printf("  %-24s %6.1f\n", "Ring",
              1.0 * md::paper::ring_allreduce(1, p));
  std::printf("  %-24s %6.1f\n", "XPMEM direct",
              1.0 * md::paper::xpmem_allreduce(1, p));

  const std::size_t imax = 256u << 10;
  const auto sw = md::nt_switch_point_allreduce(cache.available(p), p, m,
                                                imax);
  std::printf("\nnon-temporal switch point (Imax=256KB): stream copy-outs "
              "for s > %.0f KB\n",
              sw / 1024.0);

  std::printf("\nper-size advice (threshold 256 KB, DAB %.0f GB/s):\n",
              dab / 1e9);
  std::printf("  %-10s %-14s %-10s %14s\n", "size", "algorithm", "stores",
              "pred. time(us)");
  for (std::size_t s = 16u << 10; s <= 256u << 20; s *= 4) {
    const char* alg = s <= (256u << 10)
                          ? "dpml-2l"
                          : (m > 1 ? "socket-MA" : "flat-MA");
    const char* stores = s > sw ? "non-temporal" : "temporal";
    const auto dav = s <= (256u << 10)
                         ? md::paper::dpml_allreduce(s, p)
                         : md::paper::socket_ma_allreduce(s, p, m);
    std::printf("  %-10.0fKB %-14s %-10s %14.1f\n", s / 1024.0, alg, stores,
                md::time_from_dav(dav, dab) * 1e6);
  }
  return 0;
}
