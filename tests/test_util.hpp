// Shared helpers for the YHCCL test suite: deterministic per-rank input
// generators, sequential reference reductions, and a cache of thread teams
// keyed by (nranks, nsockets) so parameterized sweeps don't rebuild teams.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "yhccl/common/types.hpp"
#include "yhccl/runtime/thread_team.hpp"

namespace yhccl::test {

/// Deterministic element value for (rank, index).  Small non-negative
/// integers: exactly representable in every datatype, overflow-free for
/// sum/prod at the scales the tests use, and varied enough that wrong
/// slice routing changes the result.
inline std::int64_t gen_value(int rank, std::size_t i, ReduceOp op) {
  if (op == ReduceOp::prod) return 1 + ((rank + i) % 2);  // {1,2}
  return ((rank + 3) * 37 + static_cast<std::int64_t>(i % 1009) * 11) % 127;
}

inline std::int64_t apply_ref(ReduceOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case ReduceOp::sum: return a + b;
    case ReduceOp::prod: return a * b;
    case ReduceOp::max: return a > b ? a : b;
    case ReduceOp::min: return a < b ? a : b;
    case ReduceOp::band: return a & b;
    case ReduceOp::bor: return a | b;
  }
  return a;
}

template <typename T>
void fill_typed(void* buf, std::size_t count, int rank, ReduceOp op) {
  auto* p = static_cast<T*>(buf);
  for (std::size_t i = 0; i < count; ++i)
    p[i] = static_cast<T>(gen_value(rank, i, op));
}

inline void fill_buffer(void* buf, std::size_t count, Datatype d, int rank,
                        ReduceOp op) {
  switch (d) {
    case Datatype::u8: fill_typed<std::uint8_t>(buf, count, rank, op); break;
    case Datatype::i32: fill_typed<std::int32_t>(buf, count, rank, op); break;
    case Datatype::i64: fill_typed<std::int64_t>(buf, count, rank, op); break;
    case Datatype::f32: fill_typed<float>(buf, count, rank, op); break;
    case Datatype::f64: fill_typed<double>(buf, count, rank, op); break;
  }
}

/// Reference reduction of element i over p ranks.
inline std::int64_t reduce_ref(int p, std::size_t i, ReduceOp op,
                               Datatype d) {
  std::int64_t acc = gen_value(0, i, op);
  for (int r = 1; r < p; ++r) acc = apply_ref(op, acc, gen_value(r, i, op));
  if (d == Datatype::u8) acc &= 0xff;  // u8 sum/prod wrap
  return acc;
}

template <typename T>
::testing::AssertionResult check_typed(const void* buf, std::size_t count,
                                       int p, ReduceOp op, Datatype d,
                                       std::size_t index_offset) {
  const auto* ptr = static_cast<const T*>(buf);
  for (std::size_t i = 0; i < count; ++i) {
    const auto expect =
        static_cast<T>(reduce_ref(p, index_offset + i, op, d));
    if (ptr[i] != expect)
      return ::testing::AssertionFailure()
             << "element " << index_offset + i << ": got "
             << static_cast<double>(ptr[i]) << ", expected "
             << static_cast<double>(expect);
  }
  return ::testing::AssertionSuccess();
}

/// Verify `buf` holds the reduction of elements [index_offset,
/// index_offset+count) over p ranks.
inline ::testing::AssertionResult check_reduced(const void* buf,
                                                std::size_t count, Datatype d,
                                                int p, ReduceOp op,
                                                std::size_t index_offset = 0) {
  switch (d) {
    case Datatype::u8:
      return check_typed<std::uint8_t>(buf, count, p, op, d, index_offset);
    case Datatype::i32:
      return check_typed<std::int32_t>(buf, count, p, op, d, index_offset);
    case Datatype::i64:
      return check_typed<std::int64_t>(buf, count, p, op, d, index_offset);
    case Datatype::f32:
      return check_typed<float>(buf, count, p, op, d, index_offset);
    case Datatype::f64:
      return check_typed<double>(buf, count, p, op, d, index_offset);
  }
  return ::testing::AssertionFailure() << "bad dtype";
}

/// Thread-team cache so sweeps over message sizes reuse teams.
inline rt::ThreadTeam& cached_team(int p, int m,
                                   std::size_t scratch = 24u << 20) {
  static std::map<std::tuple<int, int, std::size_t>,
                  std::unique_ptr<rt::ThreadTeam>>
      cache;
  auto key = std::make_tuple(p, m, scratch);
  auto it = cache.find(key);
  if (it == cache.end()) {
    rt::TeamConfig cfg;
    cfg.nranks = p;
    cfg.nsockets = m;
    cfg.scratch_bytes = scratch;
    cfg.shared_heap_bytes = 4u << 20;
    cfg.chunk_bytes = 8u << 10;
    it = cache.emplace(key, std::make_unique<rt::ThreadTeam>(cfg)).first;
  }
  return *it->second;
}

}  // namespace yhccl::test
