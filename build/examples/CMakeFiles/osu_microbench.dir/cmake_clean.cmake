file(REMOVE_RECURSE
  "CMakeFiles/osu_microbench.dir/osu_microbench.cpp.o"
  "CMakeFiles/osu_microbench.dir/osu_microbench.cpp.o.d"
  "osu_microbench"
  "osu_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osu_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
