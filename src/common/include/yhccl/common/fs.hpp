// Tiny filesystem helpers for the export paths (trace / metrics).
//
// The env-gated exporters ($YHCCL_TRACE_DIR, $YHCCL_METRICS_DIR) write from
// destructors and sampler threads, where a missing directory must not cost
// the harvest: ensure_directories() gives the `mkdir -p` semantics those
// paths need, and warn_once() keeps a misconfigured knob to one stderr line
// per process instead of one per team.
#pragma once

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <string>

namespace yhccl {

/// `mkdir -p path`: create every missing component.  Returns true iff the
/// full path is a directory afterwards (racing creators are fine: EEXIST is
/// success).  Never throws — callers sit on teardown/best-effort paths.
inline bool ensure_directories(const char* path) noexcept {
  if (path == nullptr || *path == '\0') return false;
  const std::string p(path);
  for (std::size_t i = 1; i <= p.size(); ++i) {
    if (i != p.size() && p[i] != '/') continue;
    const std::string prefix = p.substr(0, i);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      // A non-directory component or permission problem: the final stat
      // below delivers the verdict.
    }
  }
  struct stat st {};
  return ::stat(p.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// ensure_directories + a single stderr warning per (process, flag) when
/// the directory cannot be provided.  `warned` is caller-owned so each
/// export site warns independently; exporters run parent-side only, so a
/// plain bool flag suffices.
inline bool ensure_dir_warn_once(const char* path, const char* what,
                                 bool& warned) noexcept {
  if (ensure_directories(path)) return true;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "[yhccl] warning: %s: cannot create directory '%s'; "
                 "export dropped\n",
                 what, path == nullptr ? "(null)" : path);
  }
  return false;
}

}  // namespace yhccl
