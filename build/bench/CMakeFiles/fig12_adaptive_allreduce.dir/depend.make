# Empty dependencies file for fig12_adaptive_allreduce.
# This may be replaced when dependencies are built.
