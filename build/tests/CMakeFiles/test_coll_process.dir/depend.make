# Empty dependencies file for test_coll_process.
# This may be replaced when dependencies are built.
