// Stress tests: long randomized sequences of *different* collectives on
// the same team.  This exercises the cross-collective protocol state that
// single-collective sweeps cannot: monotone step-flag sequencing across
// calls, scratch-window reuse between algorithms with different layouts,
// and barrier sense alternation — the classic sources of once-in-a-blue-
// moon collective corruption.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/extra.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::cached_team;
using test::check_reduced;
using test::fill_buffer;

namespace {

class MixedStress : public ::testing::TestWithParam<unsigned> {};

TEST_P(MixedStress, RandomCollectiveSequencesStayCorrect) {
  std::mt19937 rng(GetParam());
  const std::pair<int, int> shapes[] = {{2, 1}, {4, 2}, {6, 2}, {8, 4}};
  const auto [p, m] = shapes[rng() % std::size(shapes)];
  auto& team = cached_team(p, m);
  constexpr int kOps = 40;

  // One shared schedule (all ranks must agree on the op sequence).
  struct Op {
    int kind;          // 0 ar, 1 rs, 2 bcast, 3 ag, 4 reduce, 5 alltoall
    std::size_t count;
    int root;
    int alg;  // for reductions: 0 auto, 1 ma, 2 socket, 3 dpml
  };
  std::vector<Op> schedule;
  for (int i = 0; i < kOps; ++i)
    schedule.push_back({static_cast<int>(rng() % 6),
                        1 + rng() % 20000,
                        static_cast<int>(rng() % p),
                        static_cast<int>(rng() % 4)});

  const std::size_t maxn = 20001;
  std::vector<std::vector<double>> send(p), recv(p), wide(p);
  for (int r = 0; r < p; ++r) {
    send[r].resize(maxn * p);
    recv[r].resize(maxn);
    wide[r].resize(maxn * p);
  }
  std::vector<int> failures(p, 0);

  team.run([&](rt::RankCtx& ctx) {
    const int r = ctx.rank();
    for (int i = 0; i < kOps; ++i) {
      const Op op = schedule[i];
      CollOpts o;
      o.slice_max = 8u << 10;
      o.algorithm = op.alg == 1   ? Algorithm::ma_flat
                    : op.alg == 2 ? Algorithm::ma_socket_aware
                    : op.alg == 3 ? Algorithm::dpml_two_level
                                  : Algorithm::automatic;
      switch (op.kind) {
        case 0: {
          fill_buffer(send[r].data(), op.count, Datatype::f64, r,
                      ReduceOp::sum);
          allreduce(ctx, send[r].data(), recv[r].data(), op.count,
                    Datatype::f64, ReduceOp::sum, o);
          if (!check_reduced(recv[r].data(), op.count, Datatype::f64, p,
                             ReduceOp::sum))
            ++failures[r];
          break;
        }
        case 1: {
          const std::size_t blk = 1 + op.count / p;
          fill_buffer(send[r].data(), blk * p, Datatype::f64, r,
                      ReduceOp::sum);
          reduce_scatter(ctx, send[r].data(), recv[r].data(), blk,
                         Datatype::f64, ReduceOp::sum, o);
          if (!check_reduced(recv[r].data(), blk, Datatype::f64, p,
                             ReduceOp::sum, blk * r))
            ++failures[r];
          break;
        }
        case 2: {
          fill_buffer(recv[r].data(), op.count, Datatype::f64,
                      r == op.root ? 77 : r, ReduceOp::sum);
          broadcast(ctx, recv[r].data(), op.count, Datatype::f64, op.root,
                    o);
          // spot-check: everyone must now hold the root's pattern
          std::vector<double> expect(op.count);
          fill_buffer(expect.data(), op.count, Datatype::f64, 77,
                      ReduceOp::sum);
          if (recv[r][op.count / 2] != expect[op.count / 2]) ++failures[r];
          break;
        }
        case 3: {
          fill_buffer(send[r].data(), op.count, Datatype::f64, r,
                      ReduceOp::sum);
          allgather(ctx, send[r].data(), wide[r].data(), op.count,
                    Datatype::f64, o);
          std::vector<double> expect(op.count);
          for (int a = 0; a < p; ++a) {
            fill_buffer(expect.data(), op.count, Datatype::f64, a,
                        ReduceOp::sum);
            if (wide[r][a * op.count + op.count / 2] !=
                expect[op.count / 2])
              ++failures[r];
          }
          break;
        }
        case 4: {
          fill_buffer(send[r].data(), op.count, Datatype::f64, r,
                      ReduceOp::sum);
          reduce(ctx, send[r].data(), r == op.root ? recv[r].data() : nullptr,
                 op.count, Datatype::f64, ReduceOp::sum, op.root, o);
          if (r == op.root &&
              !check_reduced(recv[r].data(), op.count, Datatype::f64, p,
                             ReduceOp::sum))
            ++failures[r];
          break;
        }
        case 5: {
          const std::size_t blk = 1 + op.count / p;
          for (int b = 0; b < p; ++b)
            fill_buffer(send[r].data() + b * blk, blk, Datatype::f64,
                        r * 13 + b, ReduceOp::sum);
          alltoall(ctx, send[r].data(), wide[r].data(), blk, Datatype::f64,
                   o, AlltoallAlgo::staged);
          std::vector<double> expect(blk);
          for (int a = 0; a < p; ++a) {
            fill_buffer(expect.data(), blk, Datatype::f64, a * 13 + r,
                        ReduceOp::sum);
            if (wide[r][a * blk + blk / 2] != expect[blk / 2])
              ++failures[r];
          }
          break;
        }
      }
    }
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(failures[r], 0) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedStress, ::testing::Range(100u, 110u));

}  // namespace
