#include "yhccl/model/dav_model.hpp"

namespace yhccl::model {

namespace {

using u64 = std::uint64_t;

u64 mul(std::size_t s, double factor) {
  return static_cast<u64>(static_cast<double>(s) * factor);
}

/// Rabenseifner's halving series: 1/2 + 1/4 + ... + 1/p == 1 - 1/p.
double halving_series(int p) { return 1.0 - 1.0 / p; }

/// RG tree series: 5k/(k+1) + 3k/(k+1)^2 + ... + 3k/p (levels while
/// (k+1)^i <= p).
double rg_series(int p, int k) {
  double sum = 0;
  double denom = k + 1;
  bool first = true;
  while (denom <= static_cast<double>(p)) {
    sum += (first ? 5.0 : 3.0) * k / denom;
    first = false;
    denom *= (k + 1);
  }
  if (first) sum = 5.0 * k / (k + 1);  // degenerate tiny trees
  return sum;
}

}  // namespace

namespace paper {

u64 ring_reduce_scatter(std::size_t s, int p) {
  return static_cast<u64>(s) * 5 * (p - 1);
}
u64 rabenseifner_reduce_scatter(std::size_t s, int p) {
  return mul(s, 5.0 * p * halving_series(p));
}
u64 dpml_reduce_scatter(std::size_t s, int p) {
  return static_cast<u64>(s) * (5 * static_cast<u64>(p) - 1);
}
u64 ma_reduce_scatter(std::size_t s, int p) {
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) - 1);
}
u64 socket_ma_reduce_scatter(std::size_t s, int p, int m) {
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) + 2 * m - 3);
}

u64 ring_allreduce(std::size_t s, int p) {
  return static_cast<u64>(s) * 7 * (p - 1);
}
u64 rabenseifner_allreduce(std::size_t s, int p) {
  return mul(s, 7.0 * p * halving_series(p));
}
u64 dpml_allreduce(std::size_t s, int p) {
  return static_cast<u64>(s) * (7 * static_cast<u64>(p) - 1);
}
u64 rg_allreduce(std::size_t s, int p, int k) {
  return mul(s, p * (rg_series(p, k) + 2.0));
}
u64 ma_allreduce(std::size_t s, int p) {
  return static_cast<u64>(s) * (5 * static_cast<u64>(p) - 1);
}
u64 socket_ma_allreduce(std::size_t s, int p, int m) {
  return static_cast<u64>(s) * (5 * static_cast<u64>(p) + 2 * m - 3);
}
u64 xpmem_allreduce(std::size_t s, int p) {
  return static_cast<u64>(s) * 5 * (p - 1);
}

u64 dpml_reduce(std::size_t s, int p) {
  return static_cast<u64>(s) * (5 * static_cast<u64>(p) + 1);
}
u64 rg_reduce(std::size_t s, int p, int k) {
  return mul(s, p * rg_series(p, k));
}
u64 ma_reduce(std::size_t s, int p) {
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) + 1);
}
u64 socket_ma_reduce(std::size_t s, int p, int m) {
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) + 2 * m - 1);
}

}  // namespace paper

namespace impl {

u64 ma_reduce_scatter(std::size_t s, int p) {
  return paper::ma_reduce_scatter(s, p);
}
u64 ma_allreduce(std::size_t s, int p) { return paper::ma_allreduce(s, p); }
u64 ma_reduce(std::size_t s, int p) { return paper::ma_reduce(s, p); }

// The socket-combination stage fuses the m per-socket partials in a single
// pass — (m+1)·(s/p) per rank instead of the pairwise chain's 3(m-1)·(s/p)
// the paper's tables assume.  Stage 1 is unchanged at s(3p-m); the total
// therefore loses its m-dependence:
//   s(3p-m) + s(m+1) = s(3p+1).
u64 socket_ma_reduce_scatter(std::size_t s, int p, int m) {
  (void)m;
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) + 1);
}
u64 socket_ma_allreduce(std::size_t s, int p, int m) {
  // reduce-scatter + the 2sp copy-out of the full result on every rank.
  return socket_ma_reduce_scatter(s, p, m) + 2 * static_cast<u64>(s) * p;
}
u64 socket_ma_reduce(std::size_t s, int p, int m) {
  // reduce-scatter + the root's 2s copy-out.
  return socket_ma_reduce_scatter(s, p, m) + 2 * static_cast<u64>(s);
}

// Our DPML delivers the scatter blocks / copy-out directly from the staged
// partials (one copy less than the paper's bookkeeping) and fuses the
// partitioned reduction of the p staged buffers into one (p+1)·(s/p)-byte
// pass per block: copy-in 2sp + fused stage s(p+1) = s(3p+1) for the
// scatter shape (flat/single-socket grouping, as the baseline runs it).
u64 dpml_reduce_scatter(std::size_t s, int p) {
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) + 1);
}
u64 dpml_allreduce(std::size_t s, int p) {
  return dpml_reduce_scatter(s, p) + 2 * static_cast<u64>(s) * p;
}

u64 ring_reduce_scatter_single_copy(std::size_t s, int p) {
  return static_cast<u64>(s) * 5 * (p - 1);  // == paper
}
u64 ring_reduce_scatter_two_copy(std::size_t s, int p) {
  return static_cast<u64>(s) * 7 * (p - 1);  // +2 for the eager copy-in
}
u64 ring_allreduce_single_copy(std::size_t s, int p) {
  return static_cast<u64>(s) * 7 * (p - 1);  // == paper
}
u64 ring_allreduce_two_copy(std::size_t s, int p) {
  return static_cast<u64>(s) * 11 * (p - 1);
}

// Adds the private working-copy initialization (2s per rank) the paper's
// table omits.
u64 rabenseifner_allreduce_single_copy(std::size_t s, int p) {
  return 2 * static_cast<u64>(s) * p + mul(s, 7.0 * (p - 1));
}

u64 xpmem_allreduce(std::size_t s, int p) {
  // Fused p-ary direct reduction s(p+1) + 2s(p-1) block gather.
  return static_cast<u64>(s) * (3 * static_cast<u64>(p) - 1);
}

u64 pipelined_broadcast(std::size_t s, int p) {
  return 2 * static_cast<u64>(s) * p;  // root copy-in + (p-1) copy-outs
}
u64 pipelined_allgather(std::size_t s, int p) {
  // per rank: copy-in 2s + copy-out of all p blocks 2sp.
  return static_cast<u64>(p) * (2 * static_cast<u64>(s) +
                                2 * static_cast<u64>(s) * p);
}

}  // namespace impl

std::size_t nt_switch_point(std::size_t cache_capacity, int p,
                            std::size_t shm_bytes) {
  if (cache_capacity <= shm_bytes) return 0;
  return (cache_capacity - shm_bytes) / (2 * static_cast<std::size_t>(p));
}

std::size_t nt_switch_point_allreduce(std::size_t cache_capacity, int p,
                                      int m, std::size_t slice_max) {
  return nt_switch_point(cache_capacity, p,
                         static_cast<std::size_t>(m) *
                             static_cast<std::size_t>(p) * slice_max);
}

double time_from_dav(std::uint64_t dav_bytes, double dab_bytes_per_sec) {
  return dab_bytes_per_sec <= 0
             ? 0.0
             : static_cast<double>(dav_bytes) / dab_bytes_per_sec;
}

}  // namespace yhccl::model
