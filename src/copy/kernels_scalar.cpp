// Scalar (baseline ISA) kernel tier.  Compiled without any -m flags so the
// binary stays runnable on hosts without AVX2/AVX-512; "streaming" falls
// back to ordinary temporal stores since the baseline has no usable NT
// store path.
#include "kernel_impl.hpp"

namespace yhccl::copy {

namespace {

struct ScalarStream {
  static constexpr bool kHasStream = false;
  static void stream_line(void* dst, const void* src) noexcept {
    std::memcpy(dst, src, kimpl::kLineBytes);
  }
  static void fence() noexcept {}
};

}  // namespace

const KernelTable& scalar_table() noexcept {
  static const KernelTable t =
      kimpl::make_table<ScalarStream>(IsaTier::scalar);
  return t;
}

}  // namespace yhccl::copy
