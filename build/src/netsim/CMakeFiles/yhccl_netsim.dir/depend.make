# Empty dependencies file for yhccl_netsim.
# This may be replaced when dependencies are built.
