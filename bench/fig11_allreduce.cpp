// Fig. 11 reproduction: all-reduce algorithm comparison (socket-aware MA,
// flat MA, DPML, RG, Ring, Rabenseifner).
#include "bench_util.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  const auto sizes = default_sizes();
  const std::size_t hi = sizes.back();
  auto count_of = [](std::size_t bytes) {
    return std::max<std::size_t>(bytes / 8, 1);
  };

  std::vector<std::pair<std::string, CollArm>> arms = {
      {"Socket-MA",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         coll::socket_ma_allreduce(c, s, r, count_of(b), Datatype::f64,
                                   ReduceOp::sum);
       }},
      {"MA",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         coll::ma_allreduce(c, s, r, count_of(b), Datatype::f64,
                            ReduceOp::sum);
       }},
      {"DPML",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         base::dpml_allreduce(c, s, r, count_of(b), Datatype::f64,
                              ReduceOp::sum);
       }},
      {"RG",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         base::rg_allreduce(c, s, r, count_of(b), Datatype::f64,
                            ReduceOp::sum);
       }},
      {"Ring",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         base::ring_allreduce(c, s, r, count_of(b), Datatype::f64,
                              ReduceOp::sum, base::Transport::single_copy);
       }},
  };
  if ((p & (p - 1)) == 0)
    arms.push_back(
        {"Rabensfnr",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::rabenseifner_allreduce(c, s, r, count_of(b), Datatype::f64,
                                        ReduceOp::sum,
                                        base::Transport::single_copy);
         }});

  std::printf("Fig. 11 — all-reduce algorithm comparison (p=%d, m=%d)\n", p,
              m);
  Session session("fig11_allreduce");
  sweep(team, "all-reduce: relative time overhead vs Socket-MA", arms, sizes,
        hi, hi, &session, "allreduce")
      .print();
  session.write();
  return 0;
}
