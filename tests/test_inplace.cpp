// In-place collective tests: MPI programs routinely pass MPI_IN_PLACE;
// the YHCCL equivalent is send == recv.  Every reduction arm must produce
// the same result when the input and output alias — this exercises the
// round-structure property that reads of sub-slice t strictly precede any
// write to it.
#include <gtest/gtest.h>

#include <vector>

#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::cached_team;
using test::check_reduced;
using test::fill_buffer;

namespace {

struct Arm {
  const char* name;
  std::function<void(rt::RankCtx&, void*, std::size_t)> run;  // in-place
};

std::vector<Arm> inplace_arms() {
  return {
      {"ma_flat",
       [](rt::RankCtx& c, void* buf, std::size_t n) {
         CollOpts o;
         o.slice_max = 8u << 10;
         ma_allreduce(c, buf, buf, n, Datatype::f64, ReduceOp::sum, o);
       }},
      {"socket_ma",
       [](rt::RankCtx& c, void* buf, std::size_t n) {
         socket_ma_allreduce(c, buf, buf, n, Datatype::f64, ReduceOp::sum);
       }},
      {"dpml_2l",
       [](rt::RankCtx& c, void* buf, std::size_t n) {
         dpml_two_level_allreduce(c, buf, buf, n, Datatype::f64,
                                  ReduceOp::sum);
       }},
      {"ring",
       [](rt::RankCtx& c, void* buf, std::size_t n) {
         base::ring_allreduce(c, buf, buf, n, Datatype::f64, ReduceOp::sum);
       }},
      {"rabenseifner",
       [](rt::RankCtx& c, void* buf, std::size_t n) {
         base::rabenseifner_allreduce(c, buf, buf, n, Datatype::f64,
                                      ReduceOp::sum);
       }},
      {"rg",
       [](rt::RankCtx& c, void* buf, std::size_t n) {
         base::rg_allreduce(c, buf, buf, n, Datatype::f64, ReduceOp::sum);
       }},
      {"xpmem",
       [](rt::RankCtx& c, void* buf, std::size_t n) {
         base::xpmem_allreduce(c, buf, buf, n, Datatype::f64,
                               ReduceOp::sum);
       }},
  };
}

class InPlaceSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(InPlaceSweep, AllreduceAliasedBuffers) {
  const auto [p, count] = GetParam();
  auto& team = cached_team(p, p >= 4 ? 2 : 1);
  for (const auto& arm : inplace_arms()) {
    std::vector<std::vector<double>> buf(p, std::vector<double>(count));
    for (int r = 0; r < p; ++r)
      fill_buffer(buf[r].data(), count, Datatype::f64, r, ReduceOp::sum);
    team.run([&](rt::RankCtx& ctx) {
      arm.run(ctx, buf[ctx.rank()].data(), count);
    });
    for (int r = 0; r < p; ++r)
      EXPECT_TRUE(check_reduced(buf[r].data(), count, Datatype::f64, p,
                                ReduceOp::sum))
          << arm.name << " rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InPlaceSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(std::size_t{1}, std::size_t{1000},
                                         std::size_t{50000})),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(InPlace, GenericEntryPointAcceptsAliasedBuffers) {
  const int p = 4;
  auto& team = cached_team(p, 2);
  const std::size_t count = 70000;  // large: MA path
  std::vector<std::vector<double>> buf(p, std::vector<double>(count));
  for (int r = 0; r < p; ++r)
    fill_buffer(buf[r].data(), count, Datatype::f64, r, ReduceOp::sum);
  team.run([&](rt::RankCtx& ctx) {
    allreduce(ctx, buf[ctx.rank()].data(), buf[ctx.rank()].data(), count,
              Datatype::f64, ReduceOp::sum);
  });
  for (int r = 0; r < p; ++r)
    EXPECT_TRUE(check_reduced(buf[r].data(), count, Datatype::f64, p,
                              ReduceOp::sum));
}

}  // namespace
