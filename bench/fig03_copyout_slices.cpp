// Fig. 3 reproduction: the copy-out overhead of a reduction as a function
// of the slice size.  Every rank copies a large buffer from shared memory
// to its private receive buffer slice by slice with plain memmove; slices
// below the libc NT threshold (~2 MB) never use non-temporal stores, so
// small slices pay the RFO/write-allocate tax and run measurably slower.
//
// Paper: 256 MB per rank on 64 cores; scaled here (DESIGN.md §3).
// Expected shape: a step down in time once the slice reaches ~2 MB.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"

using namespace yhccl;
using namespace yhccl::bench;

namespace {

void BM_CopyOutSlices(benchmark::State& state) {
  const std::size_t slice = static_cast<std::size_t>(state.range(0));
  const int p = 4;  // ranks doing concurrent copy-outs
  const std::size_t per_rank =
      static_cast<std::size_t>((32u << 20) * bench_scale());
  auto& team = bench_team(p, 1);
  static std::byte* shm = nullptr;
  if (shm == nullptr) {
    // One shared source region, initialized once.
    shm = team.scratch_base();
    std::memset(shm, 0x5a, per_rank);
  }
  std::vector<std::vector<std::uint8_t>> priv(
      p, std::vector<std::uint8_t>(per_rank));

  for (auto _ : state) {
    team.run([&](rt::RankCtx& ctx) {
      auto* dst = priv[ctx.rank()].data();
      for (std::size_t off = 0; off < per_rank; off += slice) {
        const std::size_t len = std::min(slice, per_rank - off);
        std::memmove(dst + off, shm + off, len);
      }
    });
    state.SetIterationTime(team.max_time());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(per_rank) * p *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["slice_KB"] = static_cast<double>(slice >> 10);
}

}  // namespace

BENCHMARK(BM_CopyOutSlices)
    ->Arg(256 << 10)
    ->Arg(512 << 10)
    ->Arg(1 << 20)
    ->Arg(2 << 20)
    ->Arg(4 << 20)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
