// Data-copy kernels (paper §4.1).
//
//  * t_copy   — prefetched loads + regular (write-allocating) stores.  The
//               stored lines land in cache, paying the Request-For-Ownership
//               (RFO) read but making an immediate re-read cheap.
//  * nt_copy  — prefetched loads + non-temporal streaming stores.  Bypasses
//               the cache entirely: no RFO read, no dirty-line write-back,
//               but the destination is not cached for future readers.
//  * memmove_model_copy — models the C library behaviour the paper compares
//               against: switch to NT stores purely on copy *size*.
//
// t_copy and nt_copy dispatch through the runtime ISA kernel table
// (dispatch.hpp): scalar / AVX2 / AVX-512 variants selected by cpuid and
// cappable with YHCCL_ISA.  On the scalar tier nt_copy degrades to
// temporal stores (the baseline ISA has no streaming-store path).
//
// All kernels handle arbitrary alignment and length, may not overlap, and
// account their traffic to the DAV counters (2 bytes moved per payload byte).
#pragma once

#include <cstddef>

namespace yhccl::copy {

/// Default size threshold above which glibc-style memmove switches to
/// non-temporal stores (x86-64 uses a value in this neighbourhood).
inline constexpr std::size_t kMemmoveNtThreshold = 2u << 20;

/// Temporal copy: prefetch + regular stores (write-allocate).
void t_copy(void* dst, const void* src, std::size_t n) noexcept;

/// Non-temporal copy: streaming stores, sfence on completion.
void nt_copy(void* dst, const void* src, std::size_t n) noexcept;

/// Plain scalar copy (reference implementation, used by tests).
void scalar_copy(void* dst, const void* src, std::size_t n) noexcept;

/// ERMS copy: a single `rep movsb`.  Modern x86 microcode recognizes the
/// fast-string idiom and often switches to non-RFO streaming internally
/// for large copies — on some (especially virtualized) hosts this beats
/// hand-written SIMD loops; the tab04 bench compares all of them.
void erms_copy(void* dst, const void* src, std::size_t n) noexcept;

/// The size-threshold heuristic used by libc memmove: temporal below the
/// threshold, non-temporal at/above it.  This is the baseline the paper's
/// adaptive-copy replaces.
void memmove_model_copy(void* dst, const void* src, std::size_t n,
                        std::size_t nt_threshold = kMemmoveNtThreshold) noexcept;

}  // namespace yhccl::copy
