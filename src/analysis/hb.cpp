#include "yhccl/analysis/hb.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "yhccl/common/error.hpp"
#include "yhccl/common/types.hpp"

namespace yhccl::analysis {

namespace detail {
thread_local HbContext tl_hb;
}  // namespace detail

void hb_set_context(HbChecker* chk, int rank) noexcept {
  detail::tl_hb.chk = chk;
  detail::tl_hb.rank = rank;
}

bool hb_env_enabled() noexcept {
  const char* v = std::getenv("YHCCL_CHECK");
  return v != nullptr && std::strstr(v, "hb") != nullptr;
}

// ---------------------------------------------------------------------------
// Locking: tiny test-and-set spinlocks.  They guard only checker metadata
// (a sync-object clock or one shadow cell), held for a handful of word
// operations — contention is negligible next to the copies being checked.
// ---------------------------------------------------------------------------

class HbChecker::SpinLockGuard {
 public:
  explicit SpinLockGuard(std::atomic<std::uint32_t>& l) noexcept : l_(l) {
    std::uint32_t expect = 0;
    while (!l_.compare_exchange_weak(expect, 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      expect = 0;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
  ~SpinLockGuard() { l_.store(0, std::memory_order_release); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  std::atomic<std::uint32_t>& l_;
};

// ---------------------------------------------------------------------------
// Sizing / construction
// ---------------------------------------------------------------------------

std::size_t HbChecker::cell_shift_for(std::size_t region_bytes) noexcept {
  // Cacheline cells by default (collective slices are cacheline-aligned,
  // so concurrent same-cell writers genuinely false-share); widen only
  // when a region is so large the cell table would blow the arena cap.
  std::size_t shift = 6;
  while ((region_bytes >> shift) > kMaxCellsPerRegion) ++shift;
  return shift;
}

std::size_t HbChecker::ncells_for(std::size_t region_bytes) noexcept {
  if (region_bytes == 0) return 0;
  const std::size_t shift = cell_shift_for(region_bytes);
  return ((region_bytes - 1) >> shift) + 1;
}

std::size_t HbChecker::required_bytes(std::size_t total_cells) {
  // total_cells scales with caller-controlled region sizes: a silent wrap
  // here would size an arena every later cell access trusts.
  return checked_add(sizeof(HbChecker),
                     checked_mul(total_cells, sizeof(ShadowCell),
                                 "hb shadow-cell table"),
                     "hb checker arena");
}

HbChecker::HbChecker(int nranks, std::size_t total_cells)
    : nranks_(nranks), total_cells_(total_cells) {
  // Epoch clk 0 means "no access recorded", so every rank starts at 1.
  for (int r = 0; r < kMaxHbRanks; ++r) {
    std::memset(rank_vc_[r].c, 0, sizeof(rank_vc_[r].c));
    rank_vc_[r].c[r] = 1;
  }
  for (auto& l : cell_locks_) l.store(0, std::memory_order_relaxed);
}

HbChecker* HbChecker::create(void* mem, std::size_t bytes, int nranks,
                             std::size_t total_cells) {
  YHCCL_REQUIRE(nranks >= 1 && nranks <= kMaxHbRanks,
                "hb checker rank count out of range");
  YHCCL_REQUIRE(bytes >= required_bytes(total_cells),
                "hb checker arena too small");
  auto* chk = new (mem) HbChecker(nranks, total_cells);
  // Shadow cells are zero-initialised lazily by the kernel (fresh
  // MAP_ANONYMOUS pages), which is exactly the "no access" encoding.
  return chk;
}

void HbChecker::add_region(const void* base, std::size_t len,
                           const char* name) {
  if (len == 0) return;
  const std::size_t need = ncells_for(len);
  if (nregions_ >= kMaxRegions || cells_used_ + need > total_cells_) {
    std::fprintf(stderr,
                 "[yhccl hb] warning: shadow arena exhausted, region '%s' "
                 "(%zu bytes) is NOT race-checked\n",
                 name, len);
    return;
  }
  Region& r = regions_[nregions_];
  r.base = static_cast<const std::byte*>(base);
  r.len = len;
  r.shift = static_cast<std::uint32_t>(cell_shift_for(len));
  r.first_cell = cells_used_;
  r.ncells = need;
  std::snprintf(r.name, sizeof(r.name), "%s", name);
  cells_used_ += need;
  ++nregions_;  // ordinary store: regions are added before ranks start
}

// ---------------------------------------------------------------------------
// Vector-clock plumbing
// ---------------------------------------------------------------------------

void HbChecker::vc_join(VectorClock& into, const VectorClock& from,
                        int n) noexcept {
  for (int i = 0; i < n; ++i)
    if (from.c[i] > into.c[i]) into.c[i] = from.c[i];
}

HbChecker::SyncClock* HbChecker::sync_slot(const void* obj) {
  const auto key = reinterpret_cast<std::uintptr_t>(obj);
  // Fibonacci hash of the address, then linear probing.
  std::size_t idx =
      (key * 0x9E3779B97F4A7C15ull >> 32) & (kSyncSlots - 1);
  for (std::size_t probe = 0; probe < kSyncSlots; ++probe) {
    SyncClock& s = sync_[idx];
    std::uintptr_t cur = s.key.load(std::memory_order_acquire);
    if (cur == key) return &s;
    if (cur == 0) {
      std::uintptr_t expect = 0;
      if (s.key.compare_exchange_strong(expect, key,
                                        std::memory_order_acq_rel))
        return &s;
      if (expect == key) return &s;
    }
    idx = (idx + 1) & (kSyncSlots - 1);
  }
  // Table full: further edges cannot be modelled, so any race report from
  // here on could be a false positive.  Disable reporting, loudly.
  if (!degraded_.exchange(true, std::memory_order_acq_rel))
    std::fprintf(stderr,
                 "[yhccl hb] warning: sync-object table full (%zu); race "
                 "checking disabled for this team\n",
                 kSyncSlots);
  return nullptr;
}

void HbChecker::on_release(int rank, const void* obj) {
  SyncClock* s = sync_slot(obj);
  if (s == nullptr) return;
  VectorClock& mine = rank_vc_[rank];
  {
    SpinLockGuard g(s->lock);
    vc_join(s->vc, mine, nranks_);
  }
  ++mine.c[rank];
}

void HbChecker::on_acquire(int rank, const void* obj) {
  SyncClock* s = sync_slot(obj);
  if (s == nullptr) return;
  VectorClock& mine = rank_vc_[rank];
  SpinLockGuard g(s->lock);
  vc_join(mine, s->vc, nranks_);
}

void HbChecker::on_acq_rel(int rank, const void* obj) {
  SyncClock* s = sync_slot(obj);
  if (s == nullptr) return;
  VectorClock& mine = rank_vc_[rank];
  {
    SpinLockGuard g(s->lock);
    vc_join(mine, s->vc, nranks_);
    vc_join(s->vc, mine, nranks_);
  }
  ++mine.c[rank];
}

// ---------------------------------------------------------------------------
// Data-access checking
// ---------------------------------------------------------------------------

const HbChecker::Region* HbChecker::find_region(
    const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  for (std::size_t i = 0; i < nregions_; ++i) {
    const Region& r = regions_[i];
    if (b >= r.base && b < r.base + r.len) return &r;
  }
  return nullptr;
}

void HbChecker::report_race(const Region& reg, std::size_t cell_index,
                            int rank, std::uint32_t clk, const char* site,
                            bool cur_is_write, Epoch prev, bool prev_is_write,
                            const char* prev_site, std::size_t lo,
                            std::size_t hi) {
  race_count_.fetch_add(1, std::memory_order_acq_rel);
  SpinLockGuard g(report_lock_);
  if (report_[0] != '\0') return;  // keep the first report only
  const std::size_t cell_bytes = std::size_t{1} << reg.shift;
  const std::size_t off = (cell_index - reg.first_cell) * cell_bytes;
  std::snprintf(
      report_, sizeof(report_),
      "happens-before violation in region '%s': bytes [+0x%zx,+0x%zx) "
      "(shadow cell %zu, %zu B granularity)\n"
      "  current:  rank %d epoch %u %s at %s\n"
      "  previous: rank %u epoch %u %s at %s\n"
      "  no release/acquire edge orders these accesses "
      "(missing flag publish/wait, fence, or barrier)",
      reg.name, off + lo, off + hi, cell_index - reg.first_cell, cell_bytes,
      rank, clk, cur_is_write ? "write" : "read", site, prev.rank, prev.clk,
      prev_is_write ? "write" : "read", prev_site);
  std::fprintf(stderr, "[yhccl hb] %s\n", report_);
}

void HbChecker::on_access(int rank, const void* p, std::size_t n,
                          bool is_write, const char* site) {
  if (n == 0 || degraded_.load(std::memory_order_relaxed)) return;
  const Region* reg = find_region(p);
  if (reg == nullptr) return;
  const auto* b = static_cast<const std::byte*>(p);
  // Clamp to the region (an access may straddle its end; the overflow part
  // is someone else's problem — likely another region or untracked).
  const std::size_t o0 = static_cast<std::size_t>(b - reg->base);
  const std::size_t o1 = o0 + n < reg->len ? o0 + n : reg->len;
  const std::size_t cell_bytes = std::size_t{1} << reg->shift;
  VectorClock& mine = rank_vc_[rank];
  const std::uint32_t my_clk = mine.c[rank];

  for (std::size_t c = o0 >> reg->shift; c <= (o1 - 1) >> reg->shift; ++c) {
    const std::size_t cell_start = c << reg->shift;
    const std::size_t lo = o0 > cell_start ? o0 - cell_start : 0;
    const std::size_t hi =
        (o1 < cell_start + cell_bytes ? o1 - cell_start : cell_bytes);
    const std::size_t ci = reg->first_cell + c;
    ShadowCell& cell = cells()[ci];
    SpinLockGuard g(cell_locks_[ci & (kStripes - 1)]);

    // Any access conflicts with an unordered previous *write*.
    const Epoch w = cell.write;
    if (w.clk != 0 && w.rank != static_cast<std::uint32_t>(rank) &&
        w.clk > mine.c[w.rank] && lo < cell.whi && cell.wlo < hi) {
      report_race(*reg, ci, rank, my_clk, site, is_write, w,
                  /*prev_is_write=*/true, cell.wsite, lo, hi);
    }
    if (is_write) {
      // A write additionally conflicts with every unordered previous read.
      for (int r = 0; r < nranks_; ++r) {
        if (r == rank) continue;
        const ReadRec rr = cell.reads[r];
        if (rr.clk != 0 && rr.clk > mine.c[r] && lo < rr.hi && rr.lo < hi) {
          report_race(*reg, ci, rank, my_clk, site, true,
                      Epoch{static_cast<std::uint32_t>(r), rr.clk},
                      /*prev_is_write=*/false, cell.rsite, lo, hi);
          break;  // one read-conflict report per cell is plenty
        }
      }
      cell.write = Epoch{static_cast<std::uint32_t>(rank), my_clk};
      cell.wlo = static_cast<std::uint16_t>(lo);
      cell.whi = static_cast<std::uint16_t>(hi);
      cell.wsite = site;
    } else {
      ReadRec& rr = cell.reads[rank];
      if (rr.clk == my_clk) {
        // Same epoch: merge ranges so split reads keep their footprint.
        if (lo < rr.lo) rr.lo = static_cast<std::uint16_t>(lo);
        if (hi > rr.hi) rr.hi = static_cast<std::uint16_t>(hi);
      } else {
        rr = ReadRec{my_clk, static_cast<std::uint16_t>(lo),
                     static_cast<std::uint16_t>(hi)};
      }
      cell.rsite = site;
    }
  }
}

void HbChecker::on_recover() noexcept {
  // Join every rank's clock, hand the join back to each rank bumped by one
  // own-component tick: every pre-recovery access now happens-before every
  // post-recovery access, on all ranks, without touching any shadow cell.
  VectorClock join{};
  for (int r = 0; r < nranks_; ++r) vc_join(join, rank_vc_[r], nranks_);
  for (int r = 0; r < nranks_; ++r) {
    rank_vc_[r] = join;
    rank_vc_[r].c[r] = join.c[r] + 1;
  }
}

std::string HbChecker::first_report() const {
  // const_cast: the lock is mutable state guarding the report buffer.
  auto& lock = const_cast<std::atomic<std::uint32_t>&>(report_lock_);
  SpinLockGuard g(lock);
  return std::string(report_);
}

}  // namespace yhccl::analysis
