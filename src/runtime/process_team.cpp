#include "yhccl/runtime/process_team.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "yhccl/common/error.hpp"

namespace yhccl::rt {

void ProcessTeam::run_ranks(const std::function<void(int)>& wrapped) {
  std::vector<pid_t> children;
  children.reserve(static_cast<std::size_t>(nranks()));

  for (int r = 0; r < nranks(); ++r) {
    const pid_t pid = fork();
    YHCCL_CHECK_SYS(pid, "fork");
    if (pid == 0) {
      int code = 0;
      try {
        wrapped(r);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[yhccl rank %d pid %d] %s\n", r, getpid(),
                     e.what());
        code = 1;
      } catch (...) {
        std::fprintf(stderr, "[yhccl rank %d] unknown exception\n", r);
        code = 1;
      }
      // _exit: skip atexit/static destructors we share with the parent.
      std::fflush(nullptr);
      _exit(code);
    }
    children.push_back(pid);
  }

  int failures = 0;
  for (std::size_t i = 0; i < children.size(); ++i) {
    int status = 0;
    if (waitpid(children[i], &status, 0) < 0) {
      ++failures;
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }
  if (failures > 0)
    raise("ProcessTeam: " + std::to_string(failures) + " of " +
          std::to_string(nranks()) + " rank processes failed");
}

}  // namespace yhccl::rt
