#include "yhccl/coll/extra.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/policy.hpp"

namespace yhccl::coll {

namespace {

std::size_t pipe_slice(std::size_t block, const CollOpts& opts) {
  const std::size_t imax =
      std::max(round_up(opts.slice_max, kCacheline), kCacheline);
  return std::min(round_up(std::max<std::size_t>(block, 1), kCacheline),
                  imax);
}

}  // namespace

std::uint32_t morton_encode(std::uint16_t x, std::uint16_t y) noexcept {
  auto spread = [](std::uint32_t v) {
    v &= 0xffff;
    v = (v | (v << 8)) & 0x00ff00ff;
    v = (v | (v << 4)) & 0x0f0f0f0f;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

void scatter(RankCtx& ctx, const void* send, void* recv, std::size_t count,
             Datatype d, int root, const CollOpts& opts) {
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t B = count * dtype_size(d);
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, B);
    return;
  }
  const std::size_t I = pipe_slice(B, opts);
  const std::size_t nsl = ceil_div(B, I);
  detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(2 * static_cast<std::size_t>(p) * I);
  auto slot = [&](int b, std::size_t t) {
    return shm + (static_cast<std::size_t>(t % 2) * p +
                  static_cast<std::size_t>(b)) *
                     I;
  };
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = 2 * B * static_cast<std::size_t>(p) +
                        2 * static_cast<std::size_t>(p) * I;
  auto len = [&](std::size_t t) { return std::min(I, B - t * I); };

  for (std::size_t t = 0; t < nsl; ++t) {
    if (ctx.rank() == root) {
      for (int b = 0; b < p; ++b)
        copy::dispatch_copy(opts.policy, slot(b, t),
                            sb + static_cast<std::size_t>(b) * B + t * I,
                            len(t), /*temporal_hint=*/true, C, W);
    }
    if (t >= 1)
      copy::dispatch_copy(opts.policy, rb + (t - 1) * I,
                          slot(ctx.rank(), t - 1), len(t - 1),
                          /*temporal_hint=*/false, C, W);
    ctx.barrier();
  }
  copy::dispatch_copy(opts.policy, rb + (nsl - 1) * I,
                      slot(ctx.rank(), nsl - 1), len(nsl - 1),
                      /*temporal_hint=*/false, C, W);
  ctx.barrier();
}

void gather(RankCtx& ctx, const void* send, void* recv, std::size_t count,
            Datatype d, int root, const CollOpts& opts) {
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t B = count * dtype_size(d);
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, B);
    return;
  }
  const std::size_t I = pipe_slice(B, opts);
  const std::size_t nsl = ceil_div(B, I);
  detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(2 * static_cast<std::size_t>(p) * I);
  auto slot = [&](int b, std::size_t t) {
    return shm + (static_cast<std::size_t>(t % 2) * p +
                  static_cast<std::size_t>(b)) *
                     I;
  };
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = 2 * B * static_cast<std::size_t>(p) +
                        2 * static_cast<std::size_t>(p) * I;
  auto len = [&](std::size_t t) { return std::min(I, B - t * I); };

  for (std::size_t t = 0; t < nsl; ++t) {
    copy::dispatch_copy(opts.policy, slot(ctx.rank(), t), sb + t * I,
                        len(t), /*temporal_hint=*/true, C, W);
    if (ctx.rank() == root && t >= 1) {
      for (int b = 0; b < p; ++b)
        copy::dispatch_copy(opts.policy,
                            rb + static_cast<std::size_t>(b) * B + (t - 1) * I,
                            slot(b, t - 1), len(t - 1),
                            /*temporal_hint=*/false, C, W);
    }
    ctx.barrier();
  }
  if (ctx.rank() == root) {
    for (int b = 0; b < p; ++b)
      copy::dispatch_copy(opts.policy,
                          rb + static_cast<std::size_t>(b) * B + (nsl - 1) * I,
                          slot(b, nsl - 1), len(nsl - 1),
                          /*temporal_hint=*/false, C, W);
  }
  ctx.barrier();
}

namespace {

constexpr int kA2ASendSlot = 2;  // registry slots (0/1 used by baselines)
constexpr int kA2ARecvSlot = 3;

void alltoall_staged(RankCtx& ctx, const std::byte* sb, std::byte* rb,
                     std::size_t B, const CollOpts& opts) {
  const int p = ctx.nranks();
  const auto r = static_cast<std::size_t>(ctx.rank());
  const std::size_t I = pipe_slice(B, opts);
  const std::size_t nsl = ceil_div(B, I);
  detail::ScratchCarver carve(ctx);
  // Row r holds rank r's p outgoing sub-slices for the current round.
  std::byte* shm = carve.take(static_cast<std::size_t>(p) *
                              static_cast<std::size_t>(p) * I);
  auto cell = [&](std::size_t row, std::size_t col) {
    return shm + (row * static_cast<std::size_t>(p) + col) * I;
  };
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = 2 * B * static_cast<std::size_t>(p) *
                            static_cast<std::size_t>(p) +
                        static_cast<std::size_t>(p) *
                            static_cast<std::size_t>(p) * I;
  auto len = [&](std::size_t t) { return std::min(I, B - t * I); };

  for (std::size_t t = 0; t < nsl; ++t) {
    for (int b = 0; b < p; ++b)
      copy::dispatch_copy(opts.policy, cell(r, static_cast<std::size_t>(b)),
                          sb + static_cast<std::size_t>(b) * B + t * I,
                          len(t), /*temporal_hint=*/true, C, W);
    ctx.barrier();
    // Gather my column; start at my own row to stagger the readers.
    for (int k = 0; k < p; ++k) {
      const auto a = static_cast<std::size_t>((ctx.rank() + k) % p);
      copy::dispatch_copy(opts.policy, rb + a * B + t * I, cell(a, r),
                          len(t), /*temporal_hint=*/false, C, W);
    }
    ctx.barrier();
  }
}

void alltoall_direct(RankCtx& ctx, const std::byte* sb, std::byte* rb,
                     std::size_t B, const CollOpts& opts, bool morton) {
  const int p = ctx.nranks();
  ctx.publish_buffer(kA2ASendSlot, sb, B * static_cast<std::size_t>(p));
  ctx.publish_buffer(kA2ARecvSlot, rb, B * static_cast<std::size_t>(p));
  ctx.barrier();
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = 2 * B * static_cast<std::size_t>(p) *
                        static_cast<std::size_t>(p);

  if (!morton) {
    // Each rank pulls its own incoming blocks, staggered by source.
    for (int k = 0; k < p; ++k) {
      const int a = (ctx.rank() + 1 + k) % p;
      const auto src = ctx.remote_buffer(a, kA2ASendSlot);
      YHCCL_REQUIRE(src.pid == getpid(),
                    "alltoall direct needs a shared address space");
      copy::dispatch_copy(
          opts.policy, rb + static_cast<std::size_t>(a) * B,
          static_cast<const std::byte*>(src.ptr) +
              static_cast<std::size_t>(ctx.rank()) * B,
          B, /*temporal_hint=*/false, C, W);
    }
  } else {
    // Cooperative cache-oblivious transpose [41]: the p x p (src, dst)
    // block matrix is walked in Morton (Z-curve) order; pair j is executed
    // by rank (j mod p), writing straight into the destination's receive
    // buffer.  The Z-curve keeps consecutive pairs' working sets
    // overlapping, so small blocks stay cache-resident across the sweep.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    pairs.reserve(static_cast<std::size_t>(p) * p);
    for (int src_r = 0; src_r < p; ++src_r)
      for (int dst_r = 0; dst_r < p; ++dst_r)
        pairs.emplace_back(morton_encode(static_cast<std::uint16_t>(src_r),
                                         static_cast<std::uint16_t>(dst_r)),
                           static_cast<std::uint32_t>(src_r * p + dst_r));
    std::sort(pairs.begin(), pairs.end());
    for (std::size_t j = 0; j < pairs.size(); ++j) {
      if (j % static_cast<std::size_t>(p) !=
          static_cast<std::size_t>(ctx.rank()))
        continue;
      const int src_r = static_cast<int>(pairs[j].second) / p;
      const int dst_r = static_cast<int>(pairs[j].second) % p;
      const auto src = ctx.remote_buffer(src_r, kA2ASendSlot);
      const auto dst = ctx.remote_buffer(dst_r, kA2ARecvSlot);
      YHCCL_REQUIRE(src.pid == getpid() && dst.pid == getpid(),
                    "alltoall morton needs a shared address space");
      copy::dispatch_copy(
          opts.policy,
          const_cast<std::byte*>(static_cast<const std::byte*>(dst.ptr)) +
              static_cast<std::size_t>(src_r) * B,
          static_cast<const std::byte*>(src.ptr) +
              static_cast<std::size_t>(dst_r) * B,
          B, /*temporal_hint=*/false, C, W);
    }
  }
  ctx.barrier();  // all pulls complete before buffers may be reused
}

}  // namespace

void alltoall(RankCtx& ctx, const void* send, void* recv, std::size_t count,
              Datatype d, const CollOpts& opts, AlltoallAlgo algo) {
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t B = count * dtype_size(d);
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, B);
    return;
  }
  switch (algo) {
    case AlltoallAlgo::staged:
      return alltoall_staged(ctx, sb, rb, B, opts);
    case AlltoallAlgo::direct:
      return alltoall_direct(ctx, sb, rb, B, opts, /*morton=*/false);
    case AlltoallAlgo::direct_morton:
      return alltoall_direct(ctx, sb, rb, B, opts, /*morton=*/true);
  }
}

}  // namespace yhccl::coll
