// Shared-memory plan registry: the storage layer of the collective
// auto-tuner (docs/tuning.md).
//
// The registry is a fixed-size open-addressing hash table of PlanSlots
// living *inside the team's shared mapping*, so thread-backed and
// fork()-backed ranks see the same table at the same address and a plan
// committed by rank 0 is visible to every rank.  All hot-path operations
// are lock-free single-word atomics: a warm lookup is one hash, a short
// probe over `hash` words and one acquire load of the packed plan — no
// allocation, no locks, no barriers.
//
// The registry stores *packed* 64-bit keys and plans; what the bits mean
// (algorithm choice, slice schedule, NT decision) is owned by the
// collective layer (yhccl/coll/plan.hpp).  This split keeps the runtime
// free of collective semantics while the mapping layout stays runtime
// business, mirroring HbChecker and TraceBuffer.
#pragma once

#include <cstddef>
#include <cstdint>

#include "yhccl/common/types.hpp"
#include "yhccl/mc/atomic.hpp"
#include "yhccl/copy/cache_model.hpp"
#include "yhccl/runtime/topology.hpp"

namespace yhccl::rt {

/// Auto-tuner activation (TeamConfig::tune; docs/tuning.md).
enum class TuneMode : std::uint8_t {
  env,     ///< defer to $YHCCL_TUNE at construction (default: prior)
  off,     ///< legacy static switching; no registry is allocated
  prior,   ///< serve cached plans (analytic prior + warmed files), no updates
  online,  ///< prior + epsilon-greedy exploration and rank-0 refinement
};

/// Resolve `env` against $YHCCL_TUNE (off|prior|online; unset -> prior).
TuneMode resolve_tune_mode(TuneMode cfg);
const char* tune_mode_name(TuneMode m) noexcept;

/// Exploration rate for TuneMode::online, per mille.  $YHCCL_TUNE_EPS is a
/// probability in [0, 1]; unset -> 0.1.
std::uint32_t tune_eps_mille_from_env();

/// Arms per plan slot.  The collective layer derives at most this many
/// candidate schedules per key (algorithm x NT / slice variants).
inline constexpr int kPlanMaxArms = 6;
/// Per-class feedback channels in the header (one per collective kind).
inline constexpr int kPlanClasses = 8;
/// Slots in every team's registry (open addressing, bounded probe).
inline constexpr std::uint32_t kPlanSlots = 512;

/// 64-bit finalizer (splitmix64); the registry's only hash.
constexpr std::uint64_t plan_mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Machine/topology identity a plan is valid for: ranks, socket layout and
/// the cache-capacity model (§4.2) the NT prior depends on.  Persisted
/// plans are only loaded into teams with a matching signature.
std::uint64_t plan_signature(const Topology& topo,
                             const copy::CacheConfig& cache) noexcept;

// ---- packed-word structural invariants -------------------------------------
// The *meaning* of key/plan bits is owned by yhccl/coll/plan.hpp, but their
// reserved-bit skeleton is contracted here so the runtime's integrity sweep
// (Team::verify_integrity) and the read-side validators can reject torn or
// corrupted words without understanding them.  coll/plan.cpp static_asserts
// its packing against these masks.

/// Bit 63 of a committed plan word (0 = no plan committed).
inline constexpr std::uint64_t kPlanWordValidBit = 1ull << 63;
/// Plan-word bits no packer ever sets: 6-7, 14-15, 22-23, 27, 32-62.
inline constexpr std::uint64_t kPlanWordReservedMask = 0x7fffffff08c0c0c0ull;
/// Key-fields bits no packer ever sets: 40-63.
inline constexpr std::uint64_t kPlanFieldsReservedMask = 0xffffff0000000000ull;

/// Structural sanity of a stored plan word: absent, or valid-bit set with
/// every reserved bit clear.  A single flipped byte always trips this (each
/// byte of the word overlaps the reserved mask or the valid bit).
constexpr bool plan_word_sane(std::uint64_t w) noexcept {
  return w == 0 ||
         ((w & kPlanWordValidBit) != 0 && (w & kPlanWordReservedMask) == 0);
}

/// Structural sanity of stored key fields.
constexpr bool plan_fields_sane(std::uint64_t f) noexcept {
  return (f & kPlanFieldsReservedMask) == 0;
}

/// One cached plan.  `hash` is the probe identity (0 = empty); `fields`
/// holds the unhashed key bits so persistence can reconstruct the key;
/// `plan` is the committed packed plan (0 = none committed yet: every rank
/// recomputes the deterministic prior instead).  Arm statistics are
/// written by rank 0 only (single-writer; stored as double bit patterns).
struct PlanSlot {
  mc::atomic<std::uint64_t> hash{0};
  mc::atomic<std::uint64_t> fields{0};
  mc::atomic<std::uint64_t> plan{0};
  /// First team epoch at which this key may be served from cache again
  /// (0 = not quarantined).  Published with release order *after* the
  /// committed plan word is cleared, so any rank observing the mark also
  /// observes the cleared word (model-checked: protocol "quarantine").
  mc::atomic<std::uint64_t> quar{0};
  mc::atomic<std::uint64_t> hits{0};
  mc::atomic<std::uint64_t> wait_ewma{0};  ///< wait-fraction EWMA (bits)
  mc::atomic<std::uint64_t> arm_ewma[kPlanMaxArms]{};  ///< seconds (bits)
  mc::atomic<std::uint32_t> arm_n[kPlanMaxArms]{};     ///< samples per arm

  double ewma_seconds(int arm) const noexcept;
  /// Single-writer EWMA fold (alpha = 1/4; first sample seeds the average).
  void update_arm(int arm, double seconds) noexcept;
};

struct PlanRegistryStats {
  std::uint64_t lookups = 0;   ///< resolved calls (rank 0's count)
  std::uint64_t hits = 0;      ///< of which: slot already existed
  std::uint64_t misses = 0;    ///< of which: slot inserted (or table full)
  std::uint64_t inserts = 0;   ///< slots claimed (any rank's CAS win)
  std::uint64_t explores = 0;  ///< online exploration steps taken
  std::uint64_t commits = 0;   ///< plan-word rewrites from refinement
  std::uint64_t loaded = 0;    ///< plans installed from files/warming
  std::uint64_t entries = 0;   ///< live slots right now
  std::uint64_t quarantines = 0;  ///< keys pinned out of rotation
};

class PlanRegistry {
 public:
  /// Throws yhccl::Error when the slot table would overflow std::size_t.
  static std::size_t required_bytes(std::uint32_t slots);

  /// Placement-construct a registry over `bytes` of zeroed shared memory.
  static PlanRegistry* create(void* mem, std::size_t bytes,
                              std::uint32_t slots, std::uint32_t eps_mille);

  std::uint32_t capacity() const noexcept { return slots_; }
  std::uint32_t eps_mille() const noexcept { return eps_mille_; }

  /// Probe for `hash` (nonzero).  Null when absent or the probe window is
  /// exhausted.  Wait-free: at most kProbe loads.
  PlanSlot* find(std::uint64_t hash) noexcept;
  const PlanSlot* find(std::uint64_t hash) const noexcept;

  /// Find-or-insert.  All ranks race the claiming CAS with identical
  /// `fields`, so the loser's view is the winner's slot.  Null when the
  /// probe window is full (callers fall back to the computed prior).
  /// `inserted` (optional) reports whether this call claimed the slot.
  PlanSlot* acquire(std::uint64_t hash, std::uint64_t fields,
                    bool* inserted = nullptr) noexcept;

  /// Slot iteration for persistence/diagnostics (includes empty slots).
  PlanSlot& slot(std::uint32_t i) noexcept { return slots_begin()[i]; }
  const PlanSlot& slot(std::uint32_t i) const noexcept {
    return const_cast<PlanRegistry*>(this)->slots_begin()[i];
  }

  /// Lazy file-warm handshake: 0 = cold, 1 = one rank is loading, 2 = warm.
  mc::atomic<std::uint32_t>& warm_word() noexcept { return warm_state_; }

  // ---- resilience (docs/robustness.md §resume) -----------------------------
  /// Pin `hash`'s cached plan out of rotation until `until_epoch`: the
  /// committed word is cleared (resolvers fall back to the analytic prior)
  /// and the quarantine mark is raised, monotonically.  False when the key
  /// is not cached.  Safe concurrently with readers.
  bool quarantine(std::uint64_t hash, std::uint64_t until_epoch) noexcept;

  /// Is this slot's key quarantined at team epoch `epoch`?
  static bool quarantined(const PlanSlot& s, std::uint64_t epoch) noexcept {
    return s.quar.load(YHCCL_MC_ORDER(quar_publish_release,
                                      std::memory_order_acquire)) > epoch;
  }

  /// Last plan key rank 0 resolved (best effort): the retry engine reads it
  /// after a fault to attribute the failure to the in-flight plan.  A plain
  /// shared word — last resolve wins, cleared on clean completion.
  void note_inflight(std::uint64_t hash) noexcept {
    inflight_.store(hash, std::memory_order_relaxed);
  }
  std::uint64_t inflight() const noexcept {
    return inflight_.load(std::memory_order_relaxed);
  }

  // Diagnostics counters.  The per-call ones (lookup/explore/commit) are
  // bumped by rank 0 only, so stats count calls, not calls x ranks.
  void note_lookup(bool hit) noexcept {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  }
  void note_explore() noexcept {
    explores_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_commit() noexcept {
    commits_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_loaded() noexcept {
    loaded_.fetch_add(1, std::memory_order_relaxed);
  }

  PlanRegistryStats stats() const noexcept;

  /// Per-collective-class wait-fraction EWMA fed back from the profiler
  /// (plan::note_profile); biases online exploration toward sync-bound
  /// collectives.  Single-writer (parent-side, team quiesced).
  double class_wait(int cls) const noexcept;
  void fold_class_wait(int cls, double wait_fraction) noexcept;

 private:
  PlanRegistry(std::uint32_t slots, std::uint32_t eps_mille) noexcept
      : slots_(slots), eps_mille_(eps_mille) {}

  PlanSlot* slots_begin() noexcept {
    return reinterpret_cast<PlanSlot*>(reinterpret_cast<std::byte*>(this) +
                                       sizeof(PlanRegistry));
  }

  static constexpr std::uint32_t kProbe = 16;

  std::uint32_t slots_;
  std::uint32_t eps_mille_;
  mc::atomic<std::uint32_t> warm_state_{0};
  mc::atomic<std::uint64_t> lookups_{0};
  mc::atomic<std::uint64_t> hits_{0};
  mc::atomic<std::uint64_t> misses_{0};
  mc::atomic<std::uint64_t> inserts_{0};
  mc::atomic<std::uint64_t> explores_{0};
  mc::atomic<std::uint64_t> commits_{0};
  mc::atomic<std::uint64_t> loaded_{0};
  mc::atomic<std::uint64_t> quarantines_{0};
  mc::atomic<std::uint64_t> inflight_{0};
  mc::atomic<std::uint64_t> class_wait_bits_[kPlanClasses]{};
};

}  // namespace yhccl::rt
