// Communication trace record & replay.
//
// Record the exact sequence of collectives an application issues (kind,
// payload, datatype, op, root, duration), serialize it, and replay the
// pattern with synthetic buffers against any algorithm arm / copy policy.
// This turns any application into a reusable communication benchmark —
// the workflow behind the paper's application studies (§5.6), where the
// question is precisely "what would this app's collective mix cost under
// a different implementation?".
#pragma once

#include <string>
#include <vector>

#include "yhccl/coll/profiler.hpp"

namespace yhccl::coll {

struct TraceEvent {
  CollKind kind = CollKind::allreduce;
  std::size_t count = 0;  ///< elements (per the collective's semantics)
  Datatype dtype = Datatype::f64;
  ReduceOp op = ReduceOp::sum;
  int root = 0;
  double seconds = 0;  ///< measured duration when recorded

  bool operator==(const TraceEvent& o) const noexcept {
    return kind == o.kind && count == o.count && dtype == o.dtype &&
           op == o.op && root == o.root;
  }
};

class CollTrace {
 public:
  void record(const TraceEvent& e) { events_.push_back(e); }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// Total measured communication time in the recorded run.
  double recorded_seconds() const noexcept;

  /// CSV round-trip: "kind,count,dtype,op,root,seconds" per line.
  std::string to_csv() const;
  static CollTrace from_csv(const std::string& csv);

 private:
  std::vector<TraceEvent> events_;
};

// ---- recording wrappers ------------------------------------------------------
// Same shapes as yhccl::coll, with a leading trace (per rank; typically
// only rank 0's trace is kept since all ranks record the same sequence).

void allreduce(CollTrace& trace, RankCtx& ctx, const void* send, void* recv,
               std::size_t count, Datatype d, ReduceOp op,
               const CollOpts& opts = {});
void reduce(CollTrace& trace, RankCtx& ctx, const void* send, void* recv,
            std::size_t count, Datatype d, ReduceOp op, int root,
            const CollOpts& opts = {});
void reduce_scatter(CollTrace& trace, RankCtx& ctx, const void* send,
                    void* recv, std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts = {});
void broadcast(CollTrace& trace, RankCtx& ctx, void* buf, std::size_t count,
               Datatype d, int root, const CollOpts& opts = {});
void allgather(CollTrace& trace, RankCtx& ctx, const void* send, void* recv,
               std::size_t count, Datatype d, const CollOpts& opts = {});

// ---- replay --------------------------------------------------------------------

struct ReplayResult {
  double seconds = 0;          ///< wall time of the replayed sequence
  std::size_t events = 0;
  std::uint64_t payload_bytes = 0;
};

/// Re-issue the trace's collective sequence with synthetic buffers under
/// `opts`.  All ranks must call it with the same trace.  Buffers are
/// allocated (thread-locally, grown on demand) to the largest event.
ReplayResult replay(RankCtx& ctx, const CollTrace& trace,
                    const CollOpts& opts = {});

}  // namespace yhccl::coll
