// Ablation (ours): the plan-caching auto-tuner (docs/tuning.md).
//
// Phase 1 measures the explicit all-reduce engines on a tuner-off team —
// exactly the offline campaign a user would feed to `plan_check warm`.
// The session report is converted in-process with plan::warm_from_bench
// and loaded into a prior-mode team, then phase 2 runs the automatic
// switch on both teams over the same sizes:
//
//   switch-static — tuner off, the paper's §5.1 rules
//   switch-tuned  — plan cache warmed from the phase-1 measurements
//
// `bench_compare tuned` pairs the two series per size cell and fails when
// any tuned cell is significantly slower than its static partner — the
// "tuned never loses to static" acceptance gate.
#include "bench_util.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/plan.hpp"

using namespace yhccl;
using namespace yhccl::bench;

namespace {

rt::ThreadTeam& tuner_team(rt::TuneMode mode) {
  static std::map<int, std::unique_ptr<rt::ThreadTeam>> cache;
  const int key = static_cast<int>(mode);
  auto it = cache.find(key);
  if (it == cache.end()) {
    rt::TeamConfig cfg;
    cfg.nranks = bench_ranks();
    cfg.nsockets = bench_sockets();
    cfg.scratch_bytes = 96u << 20;
    cfg.shared_heap_bytes = 1u << 20;
    cfg.tune = mode;
    it = cache.emplace(key, std::make_unique<rt::ThreadTeam>(cfg)).first;
  }
  return *it->second;
}

CollArm allreduce_arm(coll::Algorithm a) {
  return [a](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
    coll::CollOpts o;
    o.algorithm = a;
    coll::allreduce(c, s, r, std::max<std::size_t>(b / 8, 1), Datatype::f64,
                    ReduceOp::sum, o);
  };
}

}  // namespace

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team_static = tuner_team(rt::TuneMode::off);
  auto& team_tuned = tuner_team(rt::TuneMode::prior);
  const auto sizes = default_sizes(4u << 10, 16u << 20);
  const std::size_t hi = sizes.back();

  std::printf("Ablation — auto-tuner vs static switching for all-reduce "
              "(p=%d, m=%d)\n", p, m);
  Session session("ablation_tuner");
  RankBuffers bufs(p, hi, hi);

  // Phase 1: the offline campaign (explicit engines, tuner bypassed).
  const std::pair<const char*, coll::Algorithm> engines[] = {
      {"dpml-2l", coll::Algorithm::dpml_two_level},
      {"flat-MA", coll::Algorithm::ma_flat},
      {"socket-MA", coll::Algorithm::ma_socket_aware},
  };
  for (const auto& [name, alg] : engines)
    for (const std::size_t b : sizes)
      measure_arm(team_static, session, "allreduce", name, bufs,
                  allreduce_arm(alg), b);

  // Warm the plan cache from those measurements (the in-process version of
  // `plan_check warm BENCH.json PLAN.json` + $YHCCL_PLAN_FILE).
  const Json plans = coll::plan::warm_from_bench(session.to_json());
  const int loaded = coll::plan::load_plans(team_tuned, plans);
  std::printf("warmed %d plan(s) from the phase-1 measurements\n", loaded);

  // Phase 2: the automatic switch, static rules vs warmed plans.
  SweepTable table;
  table.title = "allreduce switch: static rules vs tuned plans";
  table.arms = {"switch-static", "switch-tuned"};
  table.sizes = sizes;
  for (const std::size_t b : sizes) {
    const auto s =
        measure_arm(team_static, session, "allreduce", "switch-static", bufs,
                    allreduce_arm(coll::Algorithm::automatic), b);
    const auto t =
        measure_arm(team_tuned, session, "allreduce", "switch-tuned", bufs,
                    allreduce_arm(coll::Algorithm::automatic), b);
    table.times.push_back({s.time.median, t.time.median});
    const auto plan = coll::plan::query(team_tuned, coll::CollKind::allreduce,
                                        b, Datatype::f64, ReduceOp::sum);
    std::printf("  %-8s tuned plan: %-10s (%s)\n", human_size(b).c_str(),
                coll::algorithm_name(plan.algorithm),
                coll::plan::plan_source_name(plan.source));
  }
  table.print();
  session.write();
  return 0;
}
