# Empty dependencies file for fig17_miniamr.
# This may be replaced when dependencies are built.
