// Ablation (ours): the §5.1 algorithm-switching rules.  Compares the
// three reduction engines (two-level DPML, flat MA, socket-aware MA)
// across the small-to-large message range and checks that the automatic
// switcher tracks the per-size winner, i.e. auto ~= min(arms).
#include "bench_util.hpp"
#include "yhccl/coll/coll.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  const auto sizes = default_sizes(4u << 10, 16u << 20);
  const std::size_t hi = sizes.back();
  auto cnt = [](std::size_t b) { return std::max<std::size_t>(b / 8, 1); };

  auto arm_for = [&](coll::Algorithm a) {
    return [cnt, a](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
      coll::CollOpts o;
      o.algorithm = a;
      coll::allreduce(c, s, r, cnt(b), Datatype::f64, ReduceOp::sum, o);
    };
  };

  const std::vector<std::pair<std::string, CollArm>> arms = {
      {"auto", arm_for(coll::Algorithm::automatic)},
      {"dpml-2l", arm_for(coll::Algorithm::dpml_two_level)},
      {"flat-MA", arm_for(coll::Algorithm::ma_flat)},
      {"socket-MA", arm_for(coll::Algorithm::ma_socket_aware)},
  };

  std::printf("Ablation — algorithm switching for all-reduce (p=%d, m=%d, "
              "threshold=256KB)\n",
              p, m);
  Session session("ablation_switching");
  auto table = sweep(team, "allreduce engines (relative to auto)", arms,
                     sizes, hi, hi, &session, "allreduce");
  table.print();
  session.write();

  // Regret of the switcher vs the per-size oracle.
  double worst = 0;
  for (const auto& row : table.times) {
    const double best = *std::min_element(row.begin() + 1, row.end());
    if (best > 0) worst = std::max(worst, row[0] / best);
  }
  std::printf("\nmax regret of auto vs per-size best arm: %.2fx\n", worst);
  return 0;
}
