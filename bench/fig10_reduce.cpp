// Fig. 10 reproduction: reduce algorithm comparison (socket-aware MA vs
// flat MA vs DPML vs RG pipelined tree), root 0, max-over-ranks timing
// per §5.5 ("for unbalanced collectives we show the maximum overhead").
#include "bench_util.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  const auto sizes = default_sizes();
  const std::size_t hi = sizes.back();
  auto count_of = [](std::size_t bytes) {
    return std::max<std::size_t>(bytes / 8, 1);
  };

  const std::vector<std::pair<std::string, CollArm>> arms = {
      {"Socket-MA",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         coll::socket_ma_reduce(c, s, r, count_of(b), Datatype::f64,
                                ReduceOp::sum, 0);
       }},
      {"MA",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         coll::ma_reduce(c, s, r, count_of(b), Datatype::f64, ReduceOp::sum,
                         0);
       }},
      {"DPML",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         base::dpml_reduce(c, s, r, count_of(b), Datatype::f64,
                           ReduceOp::sum, 0);
       }},
      {"RG",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         base::rg_reduce(c, s, r, count_of(b), Datatype::f64, ReduceOp::sum,
                         0);
       }},
  };

  std::printf("Fig. 10 — reduce algorithm comparison (p=%d, m=%d, root=0)\n",
              p, m);
  Session session("fig10_reduce");
  sweep(team, "reduce: relative time overhead vs Socket-MA", arms, sizes, hi,
        hi, &session, "reduce")
      .print();
  session.write();
  return 0;
}
