// Fig. 13 reproduction: pipelined broadcast under the four copy policies
// (paper: Imax = 1 MB, 16 KB - 256 MB sweep; scaled here).  Broadcast has
// no computation, so the store policy dominates: nt-copy hurts small
// messages, t-copy hurts large ones, adaptive tracks both.
#include "bench_util.hpp"
#include "yhccl/coll/coll.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  const auto sizes = default_sizes(16u << 10, 32u << 20);
  const std::size_t hi = sizes.back();

  auto arm = [](copy::CopyPolicy pol) {
    return [pol](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
      (void)s;
      coll::CollOpts o;
      o.policy = pol;
      o.slice_max = 1u << 20;  // paper's Imax for the bcast experiment
      coll::pipelined_broadcast(c, r, std::max<std::size_t>(b / 8, 1),
                                Datatype::f64, /*root=*/0, o);
    };
  };

  const std::vector<std::pair<std::string, CollArm>> arms = {
      {"YHCCL", arm(copy::CopyPolicy::adaptive)},
      {"t-copy", arm(copy::CopyPolicy::always_temporal)},
      {"nt-copy", arm(copy::CopyPolicy::always_nt)},
      {"memmove", arm(copy::CopyPolicy::memmove_model)},
  };

  std::printf("Fig. 13 — adaptive pipelined broadcast (p=%d, m=%d)\n", p, m);
  Session session("fig13_adaptive_bcast");
  sweep(team, "broadcast copy-policy sweep (relative to adaptive)", arms,
        sizes, hi, hi, &session, "broadcast")
      .print();
  session.write();
  return 0;
}
