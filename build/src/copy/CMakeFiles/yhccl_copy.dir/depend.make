# Empty dependencies file for yhccl_copy.
# This may be replaced when dependencies are built.
