# Empty dependencies file for test_inplace.
# This may be replaced when dependencies are built.
