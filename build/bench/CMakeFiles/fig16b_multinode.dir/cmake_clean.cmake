file(REMOVE_RECURSE
  "CMakeFiles/fig16b_multinode.dir/fig16b_multinode.cpp.o"
  "CMakeFiles/fig16b_multinode.dir/fig16b_multinode.cpp.o.d"
  "fig16b_multinode"
  "fig16b_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16b_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
