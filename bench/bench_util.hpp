// Shared glue between the paper-reproduction bench mains and the harness
// library in src/bench (yhccl/bench/harness.hpp).  All measurement policy
// — warm-up, repetition until the median's confidence interval converges,
// outlier rejection, barrier-aligned per-rank timing — lives in the
// library; this header only keeps the bench-side conveniences: the cached
// ThreadTeam, the rewritten-between-iterations buffer sets (§5.5) and the
// figure-style sweep tables.
//
// Each bench main owns a Session named after its binary; cells measured
// through measure_arm()/sweep() land in the session and serialize to
// BENCH_<name>.json when $YHCCL_BENCH_JSON names a directory.  The
// bench_compare tool merges those into BENCH_collectives.json and diffs
// runs (docs/benchmarking.md).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "yhccl/bench/harness.hpp"
#include "yhccl/runtime/thread_team.hpp"

namespace yhccl::bench {

/// Ranks used by the intra-node benches; override with YHCCL_BENCH_RANKS.
inline int bench_ranks() {
  if (const char* e = std::getenv("YHCCL_BENCH_RANKS")) return std::atoi(e);
  return 8;
}

inline int bench_sockets() {
  if (const char* e = std::getenv("YHCCL_BENCH_SOCKETS"))
    return std::atoi(e);
  return 2;
}

/// Scale factor for message sweeps (1 = the scaled-down defaults).
inline double bench_scale() {
  if (const char* e = std::getenv("YHCCL_BENCH_SCALE")) return std::atof(e);
  return 1.0;
}

inline rt::ThreadTeam& bench_team(int p, int m,
                                  std::size_t scratch = 96u << 20) {
  static std::map<std::tuple<int, int, std::size_t>,
                  std::unique_ptr<rt::ThreadTeam>>
      cache;
  auto key = std::make_tuple(p, m, scratch);
  auto it = cache.find(key);
  if (it == cache.end()) {
    rt::TeamConfig cfg;
    cfg.nranks = p;
    cfg.nsockets = m;
    cfg.scratch_bytes = scratch;
    cfg.shared_heap_bytes = 1u << 20;
    it = cache.emplace(key, std::make_unique<rt::ThreadTeam>(cfg)).first;
  }
  return *it->second;
}

/// Per-rank buffer set for a collective benchmark.
struct RankBuffers {
  std::vector<std::vector<std::uint8_t>> send, recv;
  RankBuffers(int p, std::size_t send_bytes, std::size_t recv_bytes) {
    send.resize(p);
    recv.resize(p);
    for (int r = 0; r < p; ++r) {
      send[r].assign(send_bytes, 0);
      recv[r].assign(recv_bytes, 0);
      touch(r, 0);
    }
  }
  /// Rewrite the send buffer (simulates the application updating its data
  /// between collectives, §5.5).
  void touch(int r, unsigned iter) {
    auto& s = send[r];
    const auto v = static_cast<std::uint8_t>(r * 31 + iter * 7 + 1);
    for (std::size_t i = 0; i < s.size(); i += 512) s[i] = v;
  }
};

/// A collective arm under test: runs one invocation on a rank.
using CollArm = std::function<void(rt::RankCtx&, const void* send,
                                   void* recv, std::size_t bytes)>;

/// Bind an arm to its per-rank buffers as a harness RankFn.
inline RankFn arm_fn(RankBuffers& bufs, CollArm arm, std::size_t bytes) {
  return [&bufs, arm = std::move(arm), bytes](rt::RankCtx& ctx) {
    arm(ctx, bufs.send[ctx.rank()].data(), bufs.recv[ctx.rank()].data(),
        bytes);
  };
}

/// §5.5 buffer-rewrite hook for the timed repetition loop.
inline IterHook touch_hook(RankBuffers& bufs) {
  return [&bufs](unsigned iter) {
    for (std::size_t r = 0; r < bufs.send.size(); ++r)
      bufs.touch(static_cast<int>(r), iter);
  };
}

/// Median-of-slowest-rank seconds for one (arm, size) cell.  Timing runs
/// through the library's barrier-aligned repetition loop (timed_run).
inline double time_arm(rt::Team& team, RankBuffers& bufs, const CollArm& arm,
                       std::size_t bytes,
                       const RunPolicy& policy = RunPolicy::from_env()) {
  return timed_run(team, arm_fn(bufs, arm, bytes), policy, touch_hook(bufs))
      .median;
}

/// Measure one cell (timing + deterministic counters) and record it in the
/// session.  The bench field comes from the session name.
inline Series measure_arm(rt::Team& team, Session& session,
                          std::string collective, std::string algorithm,
                          RankBuffers& bufs, const CollArm& arm,
                          std::size_t bytes) {
  Series meta;
  meta.bench = session.name();
  meta.collective = std::move(collective);
  meta.algorithm = std::move(algorithm);
  meta.bytes = bytes;
  Series s = measure_series(team, std::move(meta),
                            arm_fn(bufs, arm, bytes), session.policy(),
                            touch_hook(bufs));
  session.add(s);
  return s;
}

/// One-shot measurement (apps and other long-running SPMD regions): a
/// single run provides both the counters and the lone timing sample.
inline Series record_once(rt::Team& team, Session& session,
                          std::string collective, std::string algorithm,
                          std::size_t bytes, const RankFn& fn) {
  Series s;
  s.bench = session.name();
  s.collective = std::move(collective);
  s.algorithm = std::move(algorithm);
  s.bytes = bytes;
  s.ranks = team.nranks();
  s.sockets = team.topo().nsockets();
  s.counters = measure_counters(team, fn);
  s.isa = s.counters.kernels.total()
              ? copy::isa_name(s.counters.kernels.dominant())
              : "-";
  s.time = summarize({team.max_time()});
  s.dab = s.time.median > 0
              ? static_cast<double>(s.counters.dav.total()) / s.time.median
              : 0;
  session.add(s);
  return s;
}

inline std::string human_size(std::size_t b) {
  char buf[32];
  if (b >= (1u << 20) && b % (1u << 20) == 0)
    std::snprintf(buf, sizeof buf, "%zuMB", b >> 20);
  else if (b >= 1024 && b % 1024 == 0)
    std::snprintf(buf, sizeof buf, "%zuKB", b >> 10);
  else
    std::snprintf(buf, sizeof buf, "%zuB", b);
  return buf;
}

/// Print one figure-style table: rows = message sizes, columns = arms;
/// cells show time (us) for the reference arm and relative overhead
/// (arm/ref) otherwise — the paper's "relative time overhead" axis.
struct SweepTable {
  std::string title;
  std::vector<std::string> arms;  // arms[0] is the reference (YHCCL)
  std::vector<std::size_t> sizes;
  // times[size_idx][arm_idx] in seconds
  std::vector<std::vector<double>> times;

  void print() const {
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%-10s %12s", "MsgSz", (arms[0] + "(us)").c_str());
    for (std::size_t a = 1; a < arms.size(); ++a)
      std::printf(" %12s", (arms[a] + "(x)").c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::printf("%-10s %12.1f", human_size(sizes[i]).c_str(),
                  times[i][0] * 1e6);
      for (std::size_t a = 1; a < arms.size(); ++a)
        std::printf(" %12.2f",
                    times[i][0] > 0 ? times[i][a] / times[i][0] : 0.0);
      std::printf("\n");
    }
    // Geometric-mean speedup of the reference over each competitor.
    std::printf("%-10s %12s", "geomean", "1.00");
    for (std::size_t a = 1; a < arms.size(); ++a) {
      double g = 1;
      int n = 0;
      for (std::size_t i = 0; i < sizes.size(); ++i)
        if (times[i][0] > 0) {
          g *= times[i][a] / times[i][0];
          ++n;
        }
      std::printf(" %12.2f", n > 0 ? std::pow(g, 1.0 / n) : 0.0);
    }
    std::printf("\n");
  }
};

/// Run a full sweep (arms x sizes) and collect the table.  `bytes` passed
/// to each arm is the *total message size*; arms derive their own counts.
/// With a session, every cell is also measured for counters and recorded
/// as a Series under `collective`.
inline SweepTable sweep(rt::ThreadTeam& team, std::string title,
                        const std::vector<std::pair<std::string, CollArm>>& arms,
                        const std::vector<std::size_t>& sizes,
                        std::size_t send_max, std::size_t recv_max,
                        Session* session = nullptr,
                        const std::string& collective = {}) {
  SweepTable t;
  t.title = std::move(title);
  for (const auto& [name, fn] : arms) t.arms.push_back(name);
  t.sizes = sizes;
  RankBuffers bufs(team.nranks(), send_max, recv_max);
  for (std::size_t s : sizes) {
    std::vector<double> row;
    for (const auto& [name, fn] : arms) {
      if (session)
        row.push_back(
            measure_arm(team, *session, collective, name, bufs, fn, s)
                .time.median);
      else
        row.push_back(time_arm(team, bufs, fn, s));
    }
    t.times.push_back(std::move(row));
  }
  return t;
}

/// Default sweep: 64 KB .. 16 MB (the paper sweeps to 256 MB on 64-core
/// nodes; scaled per DESIGN.md §3).
inline std::vector<std::size_t> default_sizes(std::size_t lo = 64u << 10,
                                              std::size_t hi = 16u << 20) {
  const double scale = bench_scale();
  std::vector<std::size_t> v;
  for (std::size_t s = lo; s <= hi; s *= 2)
    v.push_back(static_cast<std::size_t>(s * scale));
  return v;
}

}  // namespace yhccl::bench
