# Empty compiler generated dependencies file for fig16a_scalability.
# This may be replaced when dependencies are built.
