file(REMOVE_RECURSE
  "CMakeFiles/fig11_allreduce.dir/fig11_allreduce.cpp.o"
  "CMakeFiles/fig11_allreduce.dir/fig11_allreduce.cpp.o.d"
  "fig11_allreduce"
  "fig11_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
