// Collective profiling (the paper ships a PMPI-based profiling tool with
// YHCCL, §5.1).  Each rank keeps a CollProfiler; wrappers time every
// collective call and attribute its wall time, payload bytes, measured
// data-access volume (DAV) and dispatched ISA kernel tier per collective
// kind.  Per-rank profiles merge
// into a node view whose achieved DAB (DAV / time) can be compared with
// the machine's memory bandwidth — the paper's §5.4 analysis in tool form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "yhccl/coll/coll.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/runtime/sync_counts.hpp"

namespace yhccl::coll {

enum class CollKind : int {
  allreduce,
  reduce,
  reduce_scatter,
  broadcast,
  allgather,
  kCount_,
};

constexpr const char* coll_kind_name(CollKind k) noexcept {
  switch (k) {
    case CollKind::allreduce: return "allreduce";
    case CollKind::reduce: return "reduce";
    case CollKind::reduce_scatter: return "reduce_scatter";
    case CollKind::broadcast: return "broadcast";
    case CollKind::allgather: return "allgather";
    default: return "?";
  }
}

class CollProfiler {
 public:
  struct Record {
    std::uint64_t calls = 0;
    std::uint64_t payload_bytes = 0;  ///< message bytes (user-visible)
    double seconds = 0;               ///< wall time inside the collective
    copy::Dav dav;                    ///< measured memory traffic
    copy::KernelCounts kernels;       ///< dispatched kernel calls per ISA tier
    rt::SyncCounts sync;              ///< barrier / progress-flag operations

    /// Achieved data-access bandwidth, bytes/s.
    double dab() const noexcept {
      return seconds > 0 ? static_cast<double>(dav.total()) / seconds : 0;
    }
  };

  void add(CollKind k, std::size_t payload, double seconds,
           const copy::Dav& dav, const copy::KernelCounts& kernels = {},
           const rt::SyncCounts& sync = {}) noexcept;
  const Record& get(CollKind k) const noexcept;
  Record total() const noexcept;

  /// Merge another rank's profile into this one (times are summed; the
  /// node-level DAB then reflects aggregate traffic over summed time).
  CollProfiler& operator+=(const CollProfiler& o) noexcept;

  void reset() noexcept { *this = CollProfiler{}; }

  /// Human-readable per-kind table.
  std::string report() const;

 private:
  Record records_[static_cast<int>(CollKind::kCount_)];
};

// ---- profiled wrappers -------------------------------------------------------
// Identical signatures to yhccl::coll with a leading per-rank profiler.

void allreduce(CollProfiler& prof, RankCtx& ctx, const void* send,
               void* recv, std::size_t count, Datatype d, ReduceOp op,
               const CollOpts& opts = {});
void reduce(CollProfiler& prof, RankCtx& ctx, const void* send, void* recv,
            std::size_t count, Datatype d, ReduceOp op, int root,
            const CollOpts& opts = {});
void reduce_scatter(CollProfiler& prof, RankCtx& ctx, const void* send,
                    void* recv, std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts = {});
void broadcast(CollProfiler& prof, RankCtx& ctx, void* buf,
               std::size_t count, Datatype d, int root,
               const CollOpts& opts = {});
void allgather(CollProfiler& prof, RankCtx& ctx, const void* send,
               void* recv, std::size_t count, Datatype d,
               const CollOpts& opts = {});

}  // namespace yhccl::coll
