file(REMOVE_RECURSE
  "CMakeFiles/yhccl_apps.dir/dnn.cpp.o"
  "CMakeFiles/yhccl_apps.dir/dnn.cpp.o.d"
  "CMakeFiles/yhccl_apps.dir/miniamr.cpp.o"
  "CMakeFiles/yhccl_apps.dir/miniamr.cpp.o.d"
  "CMakeFiles/yhccl_apps.dir/stream.cpp.o"
  "CMakeFiles/yhccl_apps.dir/stream.cpp.o.d"
  "libyhccl_apps.a"
  "libyhccl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yhccl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
