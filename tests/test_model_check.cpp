// Model-checker validation (docs/analysis.md §MC).  Three layers:
//
//   1. Engine litmus tests against hand-built Specs: the classic
//      store-buffering and message-passing shapes prove the reads-from
//      exploration actually exercises the relaxed outcomes the C++ memory
//      model permits, and that release/acquire edges suppress them; a
//      never-signalled spin proves lost-wakeup (deadlock) detection.
//   2. Every protocol harness verifies CLEAN at 2 and 3 model ranks.
//   3. Every entry of the mutation table — one seeded memory-order
//      weakening in the production sync code — is CAUGHT, its schedule
//      replays deterministically, and the flight-recorder re-execution
//      yields a usable JSON dump.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "yhccl/analysis/hb.hpp"
#include "yhccl/mc/checker.hpp"
#include "yhccl/mc/protocols.hpp"

using namespace yhccl;

namespace {

mc::Options budget() {
  mc::Options opt = mc::Options::from_env();
  return opt;
}

// ---------------------------------------------------------------------------
// 1. Engine litmus tests
// ---------------------------------------------------------------------------

// Store buffering: with relaxed atomics both loads may miss both stores
// (each reads the initial value).  An engine that only interleaved the
// program orders could never produce r0 == r1 == 0; only reads-from
// exploration finds it.
TEST(McEngine, StoreBufferingRelaxedOutcomeIsFound) {
  struct St {
    mc::atomic<std::uint64_t> x{0}, y{0};
    std::uint64_t r[2];
  };
  static St st;  // static: Spec lambdas must outlive explore()
  mc::Spec s;
  s.nthreads = 2;
  s.reset = [] {
    st.x.store(0, std::memory_order_relaxed);
    st.y.store(0, std::memory_order_relaxed);
    st.r[0] = st.r[1] = 1;
  };
  s.body = [](int t) {
    auto& mine = t == 0 ? st.x : st.y;
    auto& theirs = t == 0 ? st.y : st.x;
    mine.store(1, std::memory_order_relaxed);
    st.r[t] = theirs.load(std::memory_order_relaxed);
  };
  s.check_final = [] {
    mc::require(st.r[0] == 1 || st.r[1] == 1,
                "store-buffering: both threads read 0");
  };
  const mc::Result r = mc::explore(s, budget());
  ASSERT_TRUE(r.caught());
  EXPECT_EQ(r.violations.front().kind, "assert");
  EXPECT_FALSE(r.violations.front().schedule.empty());
}

// Message passing, correct form: release store / acquire spin — the
// payload must always be visible.  This must verify clean AND exhaust the
// space (complete == true).
TEST(McEngine, MessagePassingReleaseAcquireIsClean) {
  struct St {
    mc::atomic<std::uint64_t> flag{0};
    mc::atomic<std::uint64_t> data{0};
  };
  static St st;
  mc::Spec s;
  s.nthreads = 2;
  s.reset = [] {
    st.flag.store(0, std::memory_order_relaxed);
    st.data.store(0, std::memory_order_relaxed);
  };
  s.body = [](int t) {
    if (t == 0) {
      st.data.store(7, std::memory_order_relaxed);
      st.flag.store(1, std::memory_order_release);
    } else {
      while (st.flag.load(std::memory_order_acquire) == 0) mc::spin_pause();
      mc::require(st.data.load(std::memory_order_relaxed) == 7,
                  "MP: payload invisible after acquire");
    }
  };
  const mc::Result r = mc::explore(s, budget());
  EXPECT_TRUE(r.clean()) << (r.violations.empty()
                                 ? "incomplete exploration"
                                 : r.violations.front().message);
}

// Message passing, broken form: a relaxed flag store lets the consumer
// observe the flag without the payload.
TEST(McEngine, MessagePassingRelaxedFlagIsCaught) {
  struct St {
    mc::atomic<std::uint64_t> flag{0};
    mc::atomic<std::uint64_t> data{0};
  };
  static St st;
  mc::Spec s;
  s.nthreads = 2;
  s.reset = [] {
    st.flag.store(0, std::memory_order_relaxed);
    st.data.store(0, std::memory_order_relaxed);
  };
  s.body = [](int t) {
    if (t == 0) {
      st.data.store(7, std::memory_order_relaxed);
      st.flag.store(1, std::memory_order_relaxed);  // missing release
    } else {
      while (st.flag.load(std::memory_order_acquire) == 0) mc::spin_pause();
      mc::require(st.data.load(std::memory_order_relaxed) == 7,
                  "MP: payload invisible after acquire");
    }
  };
  const mc::Result r = mc::explore(s, budget());
  ASSERT_TRUE(r.caught());
  EXPECT_EQ(r.violations.front().kind, "assert");
}

// A spin that can never be satisfied is a lost wakeup: no thread enabled,
// not all finished.
TEST(McEngine, LostWakeupReportsDeadlock) {
  struct St {
    mc::atomic<std::uint64_t> flag{0};
  };
  static St st;
  mc::Spec s;
  s.nthreads = 2;
  s.reset = [] { st.flag.store(0, std::memory_order_relaxed); };
  s.body = [](int t) {
    if (t == 0) {
      st.flag.store(1, std::memory_order_release);
    } else {
      while (st.flag.load(std::memory_order_acquire) < 2) mc::spin_pause();
    }
  };
  const mc::Result r = mc::explore(s, budget());
  ASSERT_TRUE(r.caught());
  EXPECT_EQ(r.violations.front().kind, "deadlock");
}

// A data race on plain memory (hb_read/hb_write instrumentation) is caught
// even when every outcome happens to look right.
TEST(McEngine, PlainMemoryRaceIsCaught) {
  struct St {
    std::uint64_t plain = 0;
  };
  static St st;
  mc::Spec s;
  s.nthreads = 2;
  s.reset = [] { st.plain = 0; };
  s.body = [](int) {
    yhccl::analysis::hb_write(&st.plain, sizeof st.plain, "racy counter");
    st.plain += 1;
  };
  const mc::Result r = mc::explore(s, budget());
  ASSERT_TRUE(r.caught());
  EXPECT_EQ(r.violations.front().kind, "race");
}

// ---------------------------------------------------------------------------
// 2. Protocols verify clean
// ---------------------------------------------------------------------------

class McProtocolClean
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(McProtocolClean, VerifiesCleanWithinBudget) {
  const auto& [name, ranks] = GetParam();
  ASSERT_TRUE(mc::protocol_supports(name, ranks));
  const mc::Result r = mc::check_protocol(name, ranks, budget());
  EXPECT_TRUE(r.violations.empty())
      << r.violations.front().kind << ": " << r.violations.front().message
      << "\nschedule: " << r.violations.front().schedule;
  EXPECT_TRUE(r.complete) << "state space not exhausted: " << r.execs
                          << " execs, " << r.seconds << "s";
  EXPECT_EQ(r.truncated, 0);
}

std::vector<std::tuple<std::string, int>> clean_cases() {
  std::vector<std::tuple<std::string, int>> cases;
  for (const auto& name : mc::protocol_names())
    for (int n : {2, 3})
      if (mc::protocol_supports(name, n)) cases.emplace_back(name, n);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, McProtocolClean,
                         ::testing::ValuesIn(clean_cases()),
                         [](const auto& i) {
                           return std::get<0>(i.param) + "_n" +
                                  std::to_string(std::get<1>(i.param));
                         });

// ---------------------------------------------------------------------------
// 3. Mutation table: every seeded weakening is caught and replayable
// ---------------------------------------------------------------------------

class McMutation : public ::testing::TestWithParam<mc::Mutation> {};

TEST_P(McMutation, CaughtWithReplayableCounterexample) {
  const mc::Mutation& m = GetParam();
  const mc::Result found = mc::check_mutation(m, budget());
  ASSERT_TRUE(found.caught())
      << mc::weak_point_name(m.point) << " weakening escaped ("
      << found.execs << " execs, complete=" << found.complete << ")";
  const mc::Violation& v = found.violations.front();
  ASSERT_FALSE(v.schedule.empty());

  // The schedule must reproduce the violation deterministically, twice.
  mc::Options opt = budget();
  opt.mutation = m.point;
  for (int round = 0; round < 2; ++round) {
    const mc::Result rep =
        mc::replay(mc::protocol_spec(m.protocol, m.nthreads), v.schedule, opt);
    ASSERT_TRUE(rep.caught()) << "replay round " << round << " of "
                              << mc::weak_point_name(m.point) << " was clean";
    EXPECT_EQ(rep.violations.front().kind, v.kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Table, McMutation,
                         ::testing::ValuesIn(mc::mutation_table()),
                         [](const auto& i) {
                           return std::string(
                               mc::weak_point_name(i.param.point));
                         });

TEST(McMutationTable, CoversEveryWeakPoint) {
  // kCount_ - 1 seedable points (none excluded); each must appear exactly
  // once so a new WeakPoint cannot land without a harness that catches it.
  const auto& table = mc::mutation_table();
  ASSERT_EQ(table.size(),
            static_cast<std::size_t>(mc::WeakPoint::kCount_) - 1);
  std::vector<bool> seen(static_cast<std::size_t>(mc::WeakPoint::kCount_));
  for (const auto& m : table) {
    const auto idx = static_cast<std::size_t>(m.point);
    EXPECT_FALSE(seen[idx]) << mc::weak_point_name(m.point) << " duplicated";
    seen[idx] = true;
  }
}

// The counterexample replay with the flight recorder attached must not
// perturb the schedule (same violation) and must emit the PR-5 flight JSON.
TEST(McFlight, CounterexampleReplayYieldsFlightDump) {
  const mc::Mutation m{mc::WeakPoint::step_publish_release, "flags", 2};
  const mc::Result found = mc::check_mutation(m, budget());
  ASSERT_TRUE(found.caught());
  const std::string json = mc::counterexample_flight(
      m.protocol, m.nthreads, found.violations.front().schedule, m.point);
  EXPECT_NE(json.find("yhccl-flight/1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fault\""), std::string::npos) << json;
  EXPECT_NE(json.find("assert"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ranks\""), std::string::npos) << json;
}

}  // namespace
