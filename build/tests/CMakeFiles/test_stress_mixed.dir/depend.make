# Empty dependencies file for test_stress_mixed.
# This may be replaced when dependencies are built.
