#include "yhccl/runtime/channel.hpp"

#include <algorithm>

#include "yhccl/analysis/hb.hpp"
#include "yhccl/common/error.hpp"
#include "yhccl/copy/kernels.hpp"
#include "yhccl/runtime/fault.hpp"
#include "yhccl/runtime/sync.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::rt {

namespace {

/// Read-side integrity gate (docs/robustness.md): at every instant the
/// counters sandwich as head <= tail <= head + kSlots — the consumer owns
/// head and never passes tail, the producer owns tail and never runs more
/// than the ring capacity ahead.  A flipped byte in either word moves it by
/// at least 38 (> kSlots), so a corrupted channel raises a coherent
/// corruption abort here instead of spinning into the watchdog.
void fifo_check(std::uint64_t head, std::uint64_t tail) {
  if (head > tail || tail - head > FifoChannel::kSlots)
    fault_raise_corruption("fifo: head/tail counters out of bounds");
}

}  // namespace

void fifo_push_chunk(FifoChannel& ch, std::byte* data, std::size_t chunk,
                     const void* src, std::size_t len, int tag) {
  const std::uint64_t t = ch.tail.load(std::memory_order_relaxed);
  SpinGuard guard("pt2pt send slot wait", trace::Phase::fifo);
  std::uint64_t h = ch.head.load(std::memory_order_acquire);
  fifo_check(h, t);
  while (t - h >= FifoChannel::kSlots) {
    guard.relax();
    h = ch.head.load(std::memory_order_acquire);
    fifo_check(h, t);
  }
  analysis::hb_acquire(&ch.head);  // slot reuse: consumer freed it
  const auto slot = static_cast<std::size_t>(t % FifoChannel::kSlots);
  if (len > 0) copy::t_copy(data + slot * chunk, src, len);
  analysis::hb_write(&ch.meta[slot], sizeof(FifoChannel::SlotMeta),
                     "fifo meta");
  ch.meta[slot] = {static_cast<std::uint32_t>(len), tag};
  analysis::hb_release(&ch.tail);
  ch.tail.store(t + 1, YHCCL_MC_ORDER(fifo_tail_release,
                                      std::memory_order_release));
}

bool fifo_try_push_chunk(FifoChannel& ch, std::byte* data, std::size_t chunk,
                         const void* src, std::size_t len, int tag) {
  const std::uint64_t t = ch.tail.load(std::memory_order_relaxed);
  const std::uint64_t h = ch.head.load(std::memory_order_acquire);
  fifo_check(h, t);
  if (t - h >= FifoChannel::kSlots) return false;
  analysis::hb_acquire(&ch.head);
  const auto slot = static_cast<std::size_t>(t % FifoChannel::kSlots);
  if (len > 0) copy::t_copy(data + slot * chunk, src, len);
  analysis::hb_write(&ch.meta[slot], sizeof(FifoChannel::SlotMeta),
                     "fifo meta");
  ch.meta[slot] = {static_cast<std::uint32_t>(len), tag};
  analysis::hb_release(&ch.tail);
  ch.tail.store(t + 1, YHCCL_MC_ORDER(fifo_tail_release,
                                      std::memory_order_release));
  return true;
}

namespace {

/// Shared tail of the two pop variants, entered once tail > head is known.
std::size_t fifo_pop_ready(FifoChannel& ch, const std::byte* data,
                           std::size_t chunk, std::uint64_t h, void* dst,
                           std::size_t cap, int tag) {
  const auto slot = static_cast<std::size_t>(h % FifoChannel::kSlots);
  analysis::hb_read(&ch.meta[slot], sizeof(FifoChannel::SlotMeta),
                    "fifo meta");
  const auto [len, mtag] = ch.meta[slot];
  YHCCL_REQUIRE(mtag == tag, "pt2pt tag mismatch");
  YHCCL_REQUIRE(len <= cap, "pt2pt recv overflow");
  if (len > 0) copy::t_copy(dst, data + slot * chunk, len);
  analysis::hb_release(&ch.head);
  ch.head.store(h + 1, YHCCL_MC_ORDER(fifo_head_release,
                                      std::memory_order_release));
  return len;
}

}  // namespace

std::size_t fifo_pop_chunk(FifoChannel& ch, const std::byte* data,
                           std::size_t chunk, void* dst, std::size_t cap,
                           int tag) {
  const std::uint64_t h = ch.head.load(std::memory_order_relaxed);
  fifo_check(h, ch.tail.load(std::memory_order_acquire));
  spin_wait_ge(ch.tail, h + 1, trace::Phase::fifo);
  return fifo_pop_ready(ch, data, chunk, h, dst, cap, tag);
}

bool fifo_try_pop_chunk(FifoChannel& ch, const std::byte* data,
                        std::size_t chunk, void* dst, std::size_t cap, int tag,
                        std::size_t* len_out) {
  const std::uint64_t h = ch.head.load(std::memory_order_relaxed);
  const std::uint64_t t = ch.tail.load(std::memory_order_acquire);
  fifo_check(h, t);
  if (t <= h) return false;
  analysis::hb_acquire(&ch.tail);
  *len_out = fifo_pop_ready(ch, data, chunk, h, dst, cap, tag);
  return true;
}

std::uint64_t rndv_post(FifoChannel& ch, const void* p, std::size_t n,
                        int pid) {
  // rndv_posted: single-writer counter (sender side only) — the relaxed
  // self-read+1 cannot tear or miss an update.  The descriptor fields are
  // plain because the release store below publishes them and the receiver's
  // acquire in spin_wait_ge(rndv_posted) reads them only afterwards; the
  // sender's own rndv_wait_drained closes the edge before reuse.
  const std::uint64_t s = ch.rndv_posted.load(std::memory_order_relaxed) + 1;
  analysis::hb_write(&ch.rndv_ptr, sizeof ch.rndv_ptr, "rndv descriptor");
  analysis::hb_write(&ch.rndv_bytes, sizeof ch.rndv_bytes, "rndv descriptor");
  analysis::hb_write(&ch.rndv_pid, sizeof ch.rndv_pid, "rndv descriptor");
  ch.rndv_ptr = p;
  ch.rndv_bytes = n;
  ch.rndv_pid = pid;
  analysis::hb_release(&ch.rndv_posted);
  ch.rndv_posted.store(s, YHCCL_MC_ORDER(rndv_post_release,
                                         std::memory_order_release));
  return s;
}

void rndv_wait_drained(FifoChannel& ch, std::uint64_t s) {
  spin_wait_ge(ch.rndv_done, s, trace::Phase::rndv);
}

void rndv_pull(FifoChannel& ch, void* p, std::size_t n, RemoteMode mode,
               PageLockTable* locks) {
  // rndv_done: single-writer counter (receiver side only), same argument as
  // rndv_posted in rndv_post above.
  const std::uint64_t s = ch.rndv_done.load(std::memory_order_relaxed) + 1;
  {
    // Span covers only the descriptor wait: remote_read below may take page
    // locks whose own wait span must not nest inside (and double-count in)
    // an rndv one.
    trace::Span sp(trace::Phase::rndv, n);
    spin_wait_ge(ch.rndv_posted, s, trace::Phase::rndv);
  }
  analysis::hb_read(&ch.rndv_ptr, sizeof ch.rndv_ptr, "rndv descriptor");
  analysis::hb_read(&ch.rndv_bytes, sizeof ch.rndv_bytes, "rndv descriptor");
  analysis::hb_read(&ch.rndv_pid, sizeof ch.rndv_pid, "rndv descriptor");
  YHCCL_REQUIRE(ch.rndv_bytes == n, "rendezvous size mismatch");
  RemoteBuf rb{ch.rndv_ptr, ch.rndv_bytes, ch.rndv_pid};
  if (n > 0) remote_read(p, rb, 0, n, mode, locks);
  analysis::hb_release(&ch.rndv_done);
  ch.rndv_done.store(s, YHCCL_MC_ORDER(rndv_done_release,
                                       std::memory_order_release));
}

}  // namespace yhccl::rt
