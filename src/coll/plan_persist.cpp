// Plan persistence ("yhccl-plan/1"), offline warming from bench reports
// and the profiler feedback hook (docs/tuning.md).
#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "yhccl/coll/plan.hpp"
#include "yhccl/common/error.hpp"

namespace yhccl::coll::plan {

using bench::Json;

namespace {

// The bench harness (yhccl_bench) layers *above* the collectives, so the
// reader/writer here is local rather than shared with bench::*_json_file.
constexpr const char* kBenchSchema = "yhccl-bench/1";

Json read_json_file(const std::string& path, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (err != nullptr) *err = "cannot open " + path;
    return {};
  }
  std::ostringstream os;
  os << in.rdbuf();
  return Json::parse(os.str(), err);
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool is_reduction(CollKind k) noexcept {
  return k == CollKind::allreduce || k == CollKind::reduce ||
         k == CollKind::reduce_scatter;
}

bool kind_from_name(const std::string& s, CollKind* out) {
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k)
    if (s == coll_kind_name(static_cast<CollKind>(k))) {
      *out = static_cast<CollKind>(k);
      return true;
    }
  return false;
}

bool dtype_from_name(const std::string& s, Datatype* out) {
  for (const auto d : {Datatype::u8, Datatype::i32, Datatype::i64,
                       Datatype::f32, Datatype::f64})
    if (s == dtype_name(d)) {
      *out = d;
      return true;
    }
  return false;
}

bool op_from_name(const std::string& s, ReduceOp* out) {
  for (const auto o : {ReduceOp::sum, ReduceOp::prod, ReduceOp::max,
                       ReduceOp::min, ReduceOp::band, ReduceOp::bor})
    if (s == op_name(o)) {
      *out = o;
      return true;
    }
  return false;
}

bool alg_from_name(const std::string& s, Algorithm* out) {
  for (const auto a :
       {Algorithm::automatic, Algorithm::ma_flat, Algorithm::ma_socket_aware,
        Algorithm::dpml_two_level, Algorithm::pipelined})
    if (s == algorithm_name(a)) {
      *out = a;
      return true;
    }
  return false;
}

bool nt_from_name(const std::string& s, NtChoice* out) {
  for (const auto n :
       {NtChoice::adaptive, NtChoice::temporal, NtChoice::stream})
    if (s == nt_choice_name(n)) {
      *out = n;
      return true;
    }
  return false;
}

PlanSource source_from_name(const std::string& s) {
  if (s == plan_source_name(PlanSource::prior)) return PlanSource::prior;
  if (s == plan_source_name(PlanSource::online)) return PlanSource::online;
  return PlanSource::bench;
}

/// log2 of a persisted pow2 byte size; 0 encodes "keep the default".
bool log2_field(std::uint64_t bytes, std::uint8_t* out) {
  if (bytes == 0) {
    *out = 0;
    return true;
  }
  if (!std::has_single_bit(bytes) || bytes > (std::uint64_t{1} << 62))
    return false;
  *out = static_cast<std::uint8_t>(std::bit_width(bytes) - 1);
  return true;
}

/// Map a bench-report arm label onto a schedulable algorithm.  Baseline
/// arms (MPI, rings, Rabenseifner, "auto" itself) are not plans and are
/// skipped by returning false.
bool normalize_bench_arm(std::string name, Algorithm* out) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (name == "dpml-2l" || name == "dpml" || name == "dpml-two-level" ||
      name == "yhccl-dpml") {
    *out = Algorithm::dpml_two_level;
    return true;
  }
  if (name == "socket-ma" || name == "ma-socket" || name == "yhccl-socket-ma") {
    *out = Algorithm::ma_socket_aware;
    return true;
  }
  if (name == "ma" || name == "flat-ma" || name == "ma-flat" ||
      name == "yhccl-ma") {
    *out = Algorithm::ma_flat;
    return true;
  }
  if (name == "pipelined" || name == "yhccl-pipelined") {
    *out = Algorithm::pipelined;
    return true;
  }
  return false;
}

Json entry_to_json(std::uint64_t sig, const PlanKey& key, const Plan& p) {
  Json e = Json::object();
  e.set("signature", hex64(sig));
  e.set("collective", coll_kind_name(key.kind));
  e.set("dtype", std::string(dtype_name(key.dtype)));
  e.set("op", std::string(op_name(key.op)));
  e.set("ranks", key.ranks);
  e.set("sockets", key.sockets);
  e.set("bucket", static_cast<int>(key.bucket));
  e.set("bytes_hi", bucket_rep_bytes(key.kind, key.bucket, CollOpts{}));
  e.set("algorithm", algorithm_name(p.algorithm));
  e.set("nt", nt_choice_name(p.nt));
  e.set("slice_max",
        p.slice_log2 != 0 ? (std::uint64_t{1} << p.slice_log2)
                          : std::uint64_t{0});
  e.set("dpml_chunk",
        p.chunk_log2 != 0 ? (std::uint64_t{1} << p.chunk_log2)
                          : std::uint64_t{0});
  e.set("nt_prior", p.nt_prior);
  e.set("arm", static_cast<int>(p.arm));
  e.set("source", plan_source_name(p.source));
  return e;
}

void check(bool ok, const char* what, std::size_t idx = ~std::size_t{0}) {
  if (ok) return;
  std::string msg = std::string("yhccl-plan/1: ") + what;
  if (idx != ~std::size_t{0})
    msg += " (plans[" + std::to_string(idx) + "])";
  raise(msg);
}

}  // namespace

void validate_plan_json(const Json& doc) {
  check(doc.is_object(), "document is not an object");
  check(doc["schema"].is_string() && doc["schema"].as_string() == kPlanSchema,
        "schema field must be \"yhccl-plan/1\"");
  const Json* plans = doc.find("plans");
  check(plans != nullptr && plans->is_array(), "missing plans array");
  std::size_t i = 0;
  for (const auto& e : plans->items()) {
    check(e.is_object(), "entry is not an object", i);
    for (const char* f : {"signature", "collective", "dtype", "op",
                          "algorithm", "nt", "source"})
      check(e[f].is_string(), f, i);
    for (const char* f :
         {"ranks", "sockets", "bucket", "slice_max", "dpml_chunk", "arm"})
      check(e[f].is_integer(), f, i);
    check(e["nt_prior"].is_bool(), "nt_prior", i);
    CollKind kind;
    Datatype d;
    ReduceOp op;
    Algorithm alg;
    NtChoice nt;
    check(kind_from_name(e["collective"].as_string(), &kind),
          "unknown collective", i);
    check(dtype_from_name(e["dtype"].as_string(), &d), "unknown dtype", i);
    check(op_from_name(e["op"].as_string(), &op), "unknown op", i);
    check(alg_from_name(e["algorithm"].as_string(), &alg) &&
              alg != Algorithm::automatic,
          "unknown algorithm", i);
    check(nt_from_name(e["nt"].as_string(), &nt), "unknown nt", i);
    check(e["ranks"].as_int() >= 1 && e["sockets"].as_int() >= 1 &&
              e["sockets"].as_int() <= e["ranks"].as_int(),
          "bad shape", i);
    std::uint8_t lg = 0;
    check(log2_field(e["slice_max"].as_uint(), &lg) &&
              log2_field(e["dpml_chunk"].as_uint(), &lg),
          "slice_max/dpml_chunk must be 0 or a power of two", i);
    ++i;
  }
}

Json save_plans(const rt::Team& team) {
  Json doc = Json::object();
  doc.set("schema", kPlanSchema);
  const auto& topo = team.topo();
  const auto& cache = team.config().cache;
  Json machine = Json::object();
  machine.set("signature", hex64(team.plan_signature()));
  machine.set("ranks", topo.nranks());
  machine.set("sockets", topo.nsockets());
  machine.set("llc_bytes", cache.llc_bytes);
  machine.set("l2_per_core", cache.l2_per_core);
  machine.set("llc_inclusive", cache.llc_inclusive);
  doc.set("machine", std::move(machine));

  Json arr = Json::array();
  const std::uint64_t dsig = opts_signature(CollOpts{});
  if (const auto* reg = team.plan_registry()) {
    for (std::uint32_t i = 0; i < reg->capacity(); ++i) {
      const auto& s = reg->slot(i);
      const std::uint64_t h = s.hash.load(std::memory_order_acquire);
      if (h == 0) continue;
      const std::uint64_t w = s.plan.load(std::memory_order_acquire);
      if ((w >> 63) == 0) continue;  // nothing committed: prior-only slot
      const PlanKey key = PlanKey::from_fields(
          s.fields.load(std::memory_order_acquire));
      // Only default-option plans for this team's shape are portable;
      // recomputing the hash filters everything else (and stale slots
      // from a pre-recovery membership) in one comparison.
      if (key.hash(team.plan_signature(), dsig) != h) continue;
      arr.push_back(entry_to_json(team.plan_signature(), key, Plan::unpack(w)));
    }
  }
  doc.set("plans", std::move(arr));
  return doc;
}

void save_plans_file(const rt::Team& team, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  YHCCL_REQUIRE(static_cast<bool>(out), "plan save: cannot open " + path);
  out << save_plans(team).dump(2) << '\n';
  out.flush();
  YHCCL_REQUIRE(static_cast<bool>(out), "plan save: write failed: " + path);
}

int load_plans(rt::Team& team, const Json& doc) {
  validate_plan_json(doc);
  auto* reg = team.plan_registry();
  YHCCL_REQUIRE(reg != nullptr,
                "plan load: the tuner is off (YHCCL_TUNE=off)");
  const auto& topo = team.topo();
  const std::string mysig = hex64(team.plan_signature());
  const std::uint64_t dsig = opts_signature(CollOpts{});
  int n = 0;
  for (const auto& e : doc["plans"].items()) {
    if (e["signature"].as_string() != mysig) continue;
    PlanKey key;
    kind_from_name(e["collective"].as_string(), &key.kind);
    dtype_from_name(e["dtype"].as_string(), &key.dtype);
    op_from_name(e["op"].as_string(), &key.op);
    key.ranks = static_cast<int>(e["ranks"].as_int());
    key.sockets = static_cast<int>(e["sockets"].as_int());
    key.bucket = static_cast<std::uint8_t>(e["bucket"].as_int());
    if (key.ranks != topo.nranks() || key.sockets != topo.nsockets())
      continue;
    Plan p;
    alg_from_name(e["algorithm"].as_string(), &p.algorithm);
    nt_from_name(e["nt"].as_string(), &p.nt);
    log2_field(e["slice_max"].as_uint(), &p.slice_log2);
    log2_field(e["dpml_chunk"].as_uint(), &p.chunk_log2);
    p.nt_prior = e["nt_prior"].as_bool();
    p.arm = static_cast<std::uint8_t>(e["arm"].as_int() & 0xf);
    p.source = source_from_name(e["source"].as_string());
    if (is_reduction(key.kind) && p.algorithm == Algorithm::pipelined)
      continue;
    if (!is_reduction(key.kind)) p.algorithm = Algorithm::pipelined;
    auto* slot = reg->acquire(key.hash(team.plan_signature(), dsig),
                              key.packed_fields());
    if (slot == nullptr) continue;  // probe window full: drop this entry
    slot->plan.store(p.pack(), std::memory_order_release);
    reg->note_loaded();
    ++n;
  }
  reg->warm_word().store(2, std::memory_order_release);
  return n;
}

int load_plans_file(rt::Team& team, const std::string& path) {
  std::string err;
  const Json doc = read_json_file(path, &err);
  YHCCL_REQUIRE(!doc.is_null(), "plan load: " + path + ": " + err);
  return load_plans(team, doc);
}

void warm_now(rt::Team& team) {
  auto* reg = team.plan_registry();
  if (reg == nullptr) return;
  auto& w = reg->warm_word();
  if (w.load(std::memory_order_acquire) == 2) return;
  std::uint32_t expect = 0;
  if (w.compare_exchange_strong(expect, 1, std::memory_order_acq_rel)) {
    // This rank (or the parent, via an explicit warm_now) won the loading
    // ticket.  Set the word to warm even on an exception: the peers must
    // not spin forever while the thrower propagates the error.
    try {
      const char* path = std::getenv("YHCCL_PLAN_FILE");
      if (path != nullptr && *path != '\0') {
        if (!std::ifstream(path).good()) {
          // A missing warm file is not an error: log and serve the prior.
          std::fprintf(stderr,
                       "yhccl: YHCCL_PLAN_FILE %s: cannot open, continuing "
                       "with the analytic prior\n",
                       path);
        } else {
          load_plans_file(team, path);  // malformed file -> throws
        }
      }
    } catch (...) {
      w.store(2, std::memory_order_release);
      throw;
    }
    w.store(2, std::memory_order_release);
    return;
  }
  rt::SpinGuard guard("plan-cache warm-up");
  while (w.load(std::memory_order_acquire) != 2) guard.relax();
}

Json warm_from_bench(const Json& report) {
  check(report.is_object() && report["schema"].is_string() &&
            report["schema"].as_string() == kBenchSchema,
        "warm_from_bench: input is not a yhccl-bench/1 report");
  const Json& machine = report["machine"];
  copy::CacheConfig cache;
  if (machine.is_object()) {
    cache.llc_bytes = machine["llc_bytes"].as_uint();
    cache.l2_per_core = machine["l2_per_core"].as_uint();
    cache.llc_inclusive = machine["llc_inclusive"].as_bool();
  }

  // Best measured arm per (collective, shape, bucket); keys are the packed
  // field words, so iteration (and the emitted file) is deterministic.
  struct Best {
    double median = 0;
    Algorithm alg = Algorithm::automatic;
  };
  std::map<std::uint64_t, Best> best;
  const CollOpts defaults{};
  for (const auto& s : report["series"].items()) {
    CollKind kind;
    Algorithm alg;
    if (!kind_from_name(s["collective"].as_string(), &kind)) continue;
    if (!normalize_bench_arm(s["algorithm"].as_string(), &alg)) continue;
    if (is_reduction(kind) == (alg == Algorithm::pipelined)) continue;
    const int ranks = static_cast<int>(s["ranks"].as_int());
    const int sockets = static_cast<int>(s["sockets"].as_int());
    if (ranks < 1 || sockets < 1 || sockets > ranks) continue;
    const double median = s["time"]["median_s"].as_double();
    if (median <= 0) continue;
    PlanKey key;
    key.kind = kind;
    key.bucket = bucket_of(kind, s["bytes"].as_uint(), defaults);
    key.ranks = ranks;
    key.sockets = sockets;
    auto& b = best[key.packed_fields()];
    if (b.median == 0 || median < b.median) b = {median, alg};
  }

  Json doc = Json::object();
  doc.set("schema", kPlanSchema);
  Json m = Json::object();
  m.set("llc_bytes", cache.llc_bytes);
  m.set("l2_per_core", cache.l2_per_core);
  m.set("llc_inclusive", cache.llc_inclusive);
  doc.set("machine", std::move(m));
  Json arr = Json::array();
  for (const auto& [fields, b] : best) {
    const PlanKey key = PlanKey::from_fields(fields);
    const rt::Topology topo(key.ranks, key.sockets);
    const std::uint64_t sig = rt::plan_signature(topo, cache);
    Plan p = prior_plan(key, defaults, topo, cache);
    p.algorithm = b.alg;
    p.source = PlanSource::bench;
    // Align the persisted arm index with this key's arm table so online
    // refinement attributes samples to the right arm after loading.
    const int narms = arm_count(key, defaults, topo);
    for (int a = 0; a < narms; ++a) {
      const Plan cand = arm_plan(a, key, defaults, topo, cache);
      if (cand.algorithm == p.algorithm && cand.nt == p.nt &&
          cand.slice_log2 == p.slice_log2) {
        p.arm = static_cast<std::uint8_t>(a);
        break;
      }
    }
    arr.push_back(entry_to_json(sig, key, p));
  }
  doc.set("plans", std::move(arr));
  return doc;
}

void note_profile(rt::Team& team, const CollProfiler& prof) {
  auto* reg = team.plan_registry();
  if (reg == nullptr) return;
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k) {
    const auto& r = prof.get(static_cast<CollKind>(k));
    if (r.calls == 0 || r.seconds <= 0) continue;
    const double f =
        std::clamp(r.wait_seconds / r.seconds, 0.0, 1.0);
    reg->fold_class_wait(k, f);
  }
}

}  // namespace yhccl::coll::plan
