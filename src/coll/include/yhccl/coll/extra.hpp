// Additional shared-memory collectives beyond the paper's core five —
// the API surface a production deployment of YHCCL needs (the paper notes
// the library "has been deployed ... to support a wide range of MPI
// workloads").  All use the same pipelined shared-memory machinery and
// adaptive-copy policy as §4.
//
//  * scatter   — root distributes block i to rank i, pipelined through a
//                double-buffered p-slot window (inverse of all-gather's
//                copy-in side).
//  * gather    — ranks deposit slices, the root drains them per round.
//  * alltoall  — personalized exchange.  Three algorithms:
//      - staged: each rank stages its outgoing row of the p x p block
//        matrix in shared memory; after a barrier every rank gathers its
//        column.  O(p^2 I) shared window per round.
//      - direct: XPMEM-style — publish send buffers, copy peers' blocks
//        straight out (thread-backed teams).
//      - direct_morton: like direct, but the (src, dst) block matrix is
//        walked in Morton (Z-curve) order, the cache-oblivious traversal
//        of Li et al. [41] the paper cites; improves locality when blocks
//        are small enough that many fit in cache.
#pragma once

#include "yhccl/coll/coll.hpp"

namespace yhccl::coll {

void scatter(RankCtx& ctx, const void* send, void* recv, std::size_t count,
             Datatype d, int root, const CollOpts& opts = {});

void gather(RankCtx& ctx, const void* send, void* recv, std::size_t count,
            Datatype d, int root, const CollOpts& opts = {});

enum class AlltoallAlgo : int { staged, direct, direct_morton };

void alltoall(RankCtx& ctx, const void* send, void* recv, std::size_t count,
              Datatype d, const CollOpts& opts = {},
              AlltoallAlgo algo = AlltoallAlgo::staged);

/// Morton (Z-order) interleave of two 16-bit coordinates — exposed for
/// tests of the cache-oblivious traversal.
std::uint32_t morton_encode(std::uint16_t x, std::uint16_t y) noexcept;

}  // namespace yhccl::coll
