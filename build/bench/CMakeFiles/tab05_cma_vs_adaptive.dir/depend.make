# Empty dependencies file for tab05_cma_vs_adaptive.
# This may be replaced when dependencies are built.
