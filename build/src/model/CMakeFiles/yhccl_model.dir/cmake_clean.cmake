file(REMOVE_RECURSE
  "CMakeFiles/yhccl_model.dir/dav_model.cpp.o"
  "CMakeFiles/yhccl_model.dir/dav_model.cpp.o.d"
  "libyhccl_model.a"
  "libyhccl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yhccl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
