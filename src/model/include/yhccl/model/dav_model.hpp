// Analytical data-access-volume (DAV) models — paper Tables 1, 2, 3 — plus
// the NT-store switch-point model of §5.4 and a DAV/DAB time estimator.
//
// Two families:
//  * `paper::` — the formulas exactly as printed in the paper's tables.
//  * `impl::`  — the byte-exact accounting of *this repository's*
//    implementations, validated against the instrumented kernels in
//    tests/test_dav_models.cpp.  They differ from `paper::` in constant
//    bookkeeping terms (e.g. the paper ignores Rabenseifner's working-copy
//    initialization and counts one extra copy for DPML) and — since the
//    single-pass m-ary fused reduction kernels — in the socket-combination
//    term: fusing m partials costs (m+1)·n instead of the pairwise chain's
//    3n(m-1), which removes the 2m-dependence from the socket-aware
//    formulas entirely.  The asymptotic p-dependence is identical.
//
// All functions take the message size `s` in bytes and return bytes moved
// per node (summed over the p ranks).
#pragma once

#include <cstddef>
#include <cstdint>

namespace yhccl::model {

namespace paper {

// ---- Table 1: reduce-scatter -----------------------------------------------
std::uint64_t ring_reduce_scatter(std::size_t s, int p);          // 5s(p-1)
std::uint64_t rabenseifner_reduce_scatter(std::size_t s, int p);  // 5sp(1-1/p)
std::uint64_t dpml_reduce_scatter(std::size_t s, int p);          // s(5p-1)
std::uint64_t ma_reduce_scatter(std::size_t s, int p);            // s(3p-1)
std::uint64_t socket_ma_reduce_scatter(std::size_t s, int p, int m);

// ---- Table 2: all-reduce -----------------------------------------------------
std::uint64_t ring_allreduce(std::size_t s, int p);          // 7s(p-1)
std::uint64_t rabenseifner_allreduce(std::size_t s, int p);  // 7sp(1-1/p)
std::uint64_t dpml_allreduce(std::size_t s, int p);          // s(7p-1)
std::uint64_t rg_allreduce(std::size_t s, int p, int k);
std::uint64_t ma_allreduce(std::size_t s, int p);  // s(5p-1)
std::uint64_t socket_ma_allreduce(std::size_t s, int p, int m);
std::uint64_t xpmem_allreduce(std::size_t s, int p);  // 5s(p-1), §5.5

// ---- Table 3: reduce ----------------------------------------------------------
std::uint64_t dpml_reduce(std::size_t s, int p);  // s(5p+1)
std::uint64_t rg_reduce(std::size_t s, int p, int k);
std::uint64_t ma_reduce(std::size_t s, int p);  // s(3p+1)
std::uint64_t socket_ma_reduce(std::size_t s, int p, int m);

}  // namespace paper

namespace impl {

// Byte-exact models of this repo's implementations (divisible geometry:
// blocks a multiple of the slice, slice cacheline-aligned).
std::uint64_t ma_reduce_scatter(std::size_t s, int p);  // s(3p-1), exact
std::uint64_t socket_ma_reduce_scatter(std::size_t s, int p, int m);  // s(3p+1)
std::uint64_t ma_allreduce(std::size_t s, int p);  // s(5p-1), exact
std::uint64_t socket_ma_allreduce(std::size_t s, int p, int m);  // s(5p+1)
std::uint64_t ma_reduce(std::size_t s, int p);  // s(3p+1), exact
std::uint64_t socket_ma_reduce(std::size_t s, int p, int m);  // s(3p+3)
std::uint64_t dpml_reduce_scatter(std::size_t s, int p);  // s(3p+1), fused
std::uint64_t dpml_allreduce(std::size_t s, int p);       // s(5p+1), fused
std::uint64_t ring_reduce_scatter_single_copy(std::size_t s, int p);
std::uint64_t ring_reduce_scatter_two_copy(std::size_t s, int p);
std::uint64_t ring_allreduce_single_copy(std::size_t s, int p);
std::uint64_t ring_allreduce_two_copy(std::size_t s, int p);
std::uint64_t rabenseifner_allreduce_single_copy(std::size_t s, int p);
std::uint64_t xpmem_allreduce(std::size_t s, int p);  // s(3p-1), fused
std::uint64_t pipelined_broadcast(std::size_t s, int p);   // 2s + 2s(p-1)
std::uint64_t pipelined_allgather(std::size_t s, int p);   // p(2s + 2sp)

// ---- operation-count simulators ---------------------------------------------
// Exact node totals (summed over all p ranks) of every deterministic
// counter the runtime instruments: DAV bytes (copy/dav.hpp), kernel
// dispatches (copy/isa.hpp) and sync operations (runtime/sync_counts.hpp).
// Unlike the closed-form byte models above — which assume divisible
// geometry — these replay each implementation's loop structure over the
// same BlockSlicing arithmetic, so they are exact for ragged tails, odd
// rank counts and s not a multiple of p·slice too.  The bench comparator
// and the CI perf-smoke leg gate on them (docs/benchmarking.md).

struct OpGeometry {
  int p = 1;                           ///< team ranks
  int m = 1;                           ///< sockets (Topology(p, m))
  std::size_t slice_max = 256u << 10;  ///< CollOpts::slice_max
  std::size_t slice_min = 64;          ///< CollOpts::slice_min
  std::size_t dpml_chunk = 32u << 10;  ///< CollOpts::dpml_chunk
  std::size_t scratch_bytes = 64u << 20;  ///< TeamConfig::scratch_bytes
  bool dpml_flat = false;              ///< CollOpts::dpml_flat
};

struct OpCounts {
  std::uint64_t loads = 0;         ///< DAV bytes read
  std::uint64_t stores = 0;        ///< DAV bytes written
  std::uint64_t kernel_calls = 0;  ///< copy/reduce kernel dispatches
  std::uint64_t barriers = 0;      ///< barrier arrivals (all ranks)
  std::uint64_t flag_posts = 0;    ///< progress-flag publishes
  std::uint64_t flag_waits = 0;    ///< progress-flag waits

  std::uint64_t dav() const noexcept { return loads + stores; }
  std::uint64_t sync() const noexcept {
    return barriers + flag_posts + flag_waits;
  }
  bool operator==(const OpCounts&) const noexcept = default;
};

// `s` follows the byte-model convention: the reduce-scatter input vector
// (p·count·esize) for *_reduce_scatter, the per-rank message otherwise.
OpCounts ma_reduce_scatter_ops(std::size_t s, const OpGeometry& g);
OpCounts ma_allreduce_ops(std::size_t s, const OpGeometry& g);
OpCounts ma_reduce_ops(std::size_t s, const OpGeometry& g);
OpCounts socket_ma_reduce_scatter_ops(std::size_t s, const OpGeometry& g);
OpCounts socket_ma_allreduce_ops(std::size_t s, const OpGeometry& g);
OpCounts socket_ma_reduce_ops(std::size_t s, const OpGeometry& g);
OpCounts dpml_reduce_scatter_ops(std::size_t s, const OpGeometry& g);
OpCounts dpml_allreduce_ops(std::size_t s, const OpGeometry& g);
OpCounts dpml_reduce_ops(std::size_t s, const OpGeometry& g);
OpCounts pipelined_broadcast_ops(std::size_t s, const OpGeometry& g);
OpCounts pipelined_allgather_ops(std::size_t s, const OpGeometry& g);
OpCounts xpmem_allreduce_ops(std::size_t s, const OpGeometry& g);

}  // namespace impl

/// §5.4: message size beyond which the adaptive policy starts streaming
/// the copy-outs of the MA all-reduce:
///   W = 2sp + shm  >  C   <=>   s > (C - shm) / (2p),
/// where shm is the shared-buffer term (m*p*Imax for the socket-aware
/// variant; the paper's worked numbers in §5.4 plug in p*Imax).
/// Returns 0 when the cache is so small every size streams.
std::size_t nt_switch_point(std::size_t cache_capacity, int p,
                            std::size_t shm_bytes);
std::size_t nt_switch_point_allreduce(std::size_t cache_capacity, int p,
                                      int m, std::size_t slice_max);

/// Predicted wall time from DAV and a measured memory bandwidth (DAB).
double time_from_dav(std::uint64_t dav_bytes, double dab_bytes_per_sec);

}  // namespace yhccl::model
