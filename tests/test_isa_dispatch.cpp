// Tests for the runtime ISA tier selection (isa.hpp / dispatch.hpp):
// detection, forcing/clamping, name parsing, per-tier kernel-call counters
// and the copy entry points under every runnable tier.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/dispatch.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/copy/kernels.hpp"

namespace yc = yhccl::copy;

namespace {

class ScopedIsa {
 public:
  explicit ScopedIsa(yc::IsaTier t) : prev_(yc::active_isa()) {
    yc::force_isa(t);
  }
  ~ScopedIsa() { yc::force_isa(prev_); }

 private:
  yc::IsaTier prev_;
};

std::vector<yc::IsaTier> runnable_tiers() {
  std::vector<yc::IsaTier> ts;
  for (int t = 0; t <= static_cast<int>(yc::detected_isa()); ++t)
    ts.push_back(static_cast<yc::IsaTier>(t));
  return ts;
}

TEST(IsaDispatch, DetectionAndActiveAreWithinRange) {
  const auto det = yc::detected_isa();
  EXPECT_GE(static_cast<int>(det), static_cast<int>(yc::IsaTier::scalar));
  EXPECT_LE(static_cast<int>(det), static_cast<int>(yc::IsaTier::avx512));
  EXPECT_LE(static_cast<int>(yc::active_isa()), static_cast<int>(det));
}

TEST(IsaDispatch, ForceClampsToDetectedAndRestores) {
  const auto prev = yc::active_isa();
  const auto got = yc::force_isa(yc::IsaTier::avx512);
  // Never activates more than the host supports...
  EXPECT_LE(static_cast<int>(got), static_cast<int>(yc::detected_isa()));
  EXPECT_EQ(got, yc::active_isa());
  // ...and scalar is always available.
  EXPECT_EQ(yc::force_isa(yc::IsaTier::scalar), yc::IsaTier::scalar);
  EXPECT_EQ(yc::active_isa(), yc::IsaTier::scalar);
  yc::force_isa(prev);
  EXPECT_EQ(yc::active_isa(), prev);
}

TEST(IsaDispatch, NamesRoundTrip) {
  for (yc::IsaTier t : {yc::IsaTier::scalar, yc::IsaTier::avx2,
                        yc::IsaTier::avx512}) {
    yc::IsaTier parsed;
    ASSERT_TRUE(yc::isa_from_string(yc::isa_name(t), parsed));
    EXPECT_EQ(parsed, t);
  }
  yc::IsaTier dummy;
  EXPECT_FALSE(yc::isa_from_string("sse9", dummy));
  EXPECT_FALSE(yc::isa_from_string("", dummy));
  EXPECT_FALSE(yc::isa_from_string(nullptr, dummy));
}

TEST(IsaDispatch, KernelTableReportsItsOwnTier) {
  // For tiers the build compiled in and the request clamps to, the table's
  // tag must match what dispatch will count.
  for (yc::IsaTier t : runnable_tiers()) {
    const auto& tbl = yc::kernel_table(t);
    EXPECT_EQ(tbl.tier, t);
    EXPECT_NE(tbl.copy_t, nullptr);
    EXPECT_NE(tbl.copy_nt, nullptr);
    EXPECT_NE(tbl.reduce, nullptr);
  }
}

TEST(IsaDispatch, KernelCountsAttributeToActiveTier) {
  std::vector<std::uint8_t> src(4096, 7), dst(4096, 0);
  for (yc::IsaTier t : runnable_tiers()) {
    ScopedIsa scoped(t);
    yc::KernelCountScope counts;
    yc::t_copy(dst.data(), src.data(), src.size());
    yc::nt_copy(dst.data(), src.data(), src.size());
    const auto d = counts.delta();
    EXPECT_EQ(d.total(), 2u) << isa_name(t);
    EXPECT_EQ(d.calls[static_cast<int>(t)], 2u) << isa_name(t);
    EXPECT_EQ(d.dominant(), t);
  }
}

TEST(IsaDispatch, CopiesAreExactUnderEveryTierAndAlignment) {
  for (yc::IsaTier t : runnable_tiers()) {
    ScopedIsa scoped(t);
    for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                          std::size_t{4097}, std::size_t{262147}}) {
      std::vector<std::uint8_t> src(n + 3), dst(n + 5, 0);
      for (std::size_t i = 0; i < n; ++i)
        src[3 + i] = static_cast<std::uint8_t>(i * 13 + 5);
      yc::t_copy(dst.data() + 5, src.data() + 3, n);
      ASSERT_EQ(0, std::memcmp(dst.data() + 5, src.data() + 3, n))
          << isa_name(t) << " t_copy n=" << n;
      std::fill(dst.begin(), dst.end(), 0);
      yc::nt_copy(dst.data() + 5, src.data() + 3, n);
      ASSERT_EQ(0, std::memcmp(dst.data() + 5, src.data() + 3, n))
          << isa_name(t) << " nt_copy n=" << n;
    }
  }
}

TEST(IsaDispatch, KernelCountDeltasComposeLikeDav) {
  yc::KernelCounts a, b;
  a.calls[0] = 3;
  b.calls[0] = 1;
  b.calls[2] = 5;
  auto sum = a;
  sum += b;
  EXPECT_EQ(sum.total(), 9u);
  EXPECT_EQ((sum - a).calls[2], 5u);
  EXPECT_EQ(sum.dominant(), yc::IsaTier::avx512);
  EXPECT_EQ(yc::KernelCounts{}.dominant(), yc::IsaTier::scalar);
}

}  // namespace
